//! `pdtl serve`: a resident graph-catalog daemon.
//!
//! One-shot runs pay orientation, page-cache warmup and process startup
//! on every query. The serve mode amortises all three: a [`Catalog`]
//! opens a directory of PDTL graphs **once** — each verified against
//! its integrity manifest at registration, then oriented to disk per
//! codec — and a [`Server`] answers concurrent [`Message::Query`]
//! requests against the warm replicas over the existing TCP transport
//! and [`Message`] framing (tags 8–12; no second protocol).
//!
//! Resource discipline matches the one-shot path:
//!
//! * every query states its worst-case resident cost in edges
//!   (`cores × M`, plus `|E*|` when it materialises the graph for the
//!   analytics kernels) and is admitted through a [`BudgetLedger`] —
//!   concurrent MGT runs never oversubscribe the configured budget,
//!   and an impossible request is a typed rejection, not a deadlock;
//! * queries run on a bounded worker pool, so a stalled query occupies
//!   one worker, never the accept loop or other connections;
//! * failures — unknown graph, bad parameters, a mid-run engine error —
//!   are answered with [`Message::QueryError`] and the daemon keeps
//!   serving; a client that disconnects mid-query costs nothing but the
//!   undeliverable response.
//!
//! A [`Message::StatsRequest`] returns the catalog plus aggregate
//! counters (queries served, bytes read, decoded `u32`s, admission
//! high-water mark and a fixed-bucket latency histogram for p50/p99).
//! Shutdown — [`Server::shutdown`] or a client [`Message::Shutdown`] —
//! stops accepting, drains in-flight queries, and joins every thread.

use std::collections::BTreeMap;
use std::net::{TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use pdtl_analytics::{clustering, ktruss};
use pdtl_core::mgt::MgtOptions;
use pdtl_core::orient::{orient_to_disk_with, OrientedGraph};
use pdtl_core::sink::{CollectSink, CountSink};
use pdtl_core::{BalanceStrategy, LocalConfig, LocalRunner, RunReport, ScratchDir};
use pdtl_graph::DiskGraph;
use pdtl_io::{BudgetLedger, Codec, IoStats, MemoryBudget};

use crate::error::{ClusterError, Result};
use crate::message::{
    CatalogGraphInfo, Message, QueryOperation, QueryOptions, ServerStats, WorkerSummary,
};
use crate::netmodel::NetTraffic;
use crate::node::summarize;
use crate::transport::{TcpTransport, Transport};

/// How long connection threads sleep in `recv_deadline` between stop
/// checks: the upper bound on how stale an idle connection's view of a
/// shutdown can be.
const POLL: Duration = Duration::from_millis(100);

/// Caps on per-query parameters, so one malformed request cannot ask
/// the daemon for unbounded work.
const MAX_CORES: u32 = 64;
const MAX_LIST_LIMIT: u32 = 1 << 22;
const MAX_TRIALS: u32 = 4096;

// ---------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------

/// One registered graph: the verified input plus an oriented on-disk
/// replica per configured codec (kept from orientation time, so the
/// original degrees for in-degree load balancing survive).
struct CatalogEntry {
    input: DiskGraph,
    vertices: u32,
    m_star: u64,
    oriented: Vec<(Codec, OrientedGraph)>,
}

impl CatalogEntry {
    fn oriented_for(&self, codec: Codec) -> Option<&OrientedGraph> {
        self.oriented
            .iter()
            .find(|(c, _)| *c == codec)
            .map(|(_, og)| og)
    }
}

/// A directory of PDTL graphs opened for serving.
///
/// [`open`](Self::open) scans `dir` for `<name>.deg` bases and
/// registers each: `DiskGraph::open` (structural + quick manifest
/// tier), [`DiskGraph::verify_full`] (every byte digested against the
/// `.mft` manifest), then one [`orient_to_disk_with`] per codec into
/// the catalog's scratch directory. A graph that fails any step is
/// *rejected* — recorded with its typed error, never served — and the
/// rest of the catalog loads normally. The scratch directory (oriented
/// replicas) is removed when the catalog drops.
pub struct Catalog {
    entries: BTreeMap<String, Arc<CatalogEntry>>,
    rejected: Vec<(String, String)>,
    io: Arc<IoStats>,
    scratch: ScratchDir,
}

impl Catalog {
    /// Open every graph under `dir`, orienting replicas for `codecs`
    /// (with `threads`-way parallel orientation) into `work_dir`.
    ///
    /// `work_dir` is owned by the catalog and removed on drop.
    pub fn open(dir: &Path, work_dir: &Path, codecs: &[Codec], threads: usize) -> Result<Catalog> {
        let scratch = ScratchDir::create(work_dir)?;
        let io = IoStats::new();
        let mut names = Vec::new();
        let read = std::fs::read_dir(dir)
            .map_err(|e| ClusterError::Io(pdtl_io::IoError::os("read_dir", dir, e)))?;
        for entry in read {
            let entry =
                entry.map_err(|e| ClusterError::Io(pdtl_io::IoError::os("read_dir", dir, e)))?;
            let path = entry.path();
            if let Some(name) = path
                .file_name()
                .and_then(|f| f.to_str())
                .and_then(|f| f.strip_suffix(".deg"))
            {
                names.push((name.to_string(), dir.join(name)));
            }
        }
        names.sort();
        let mut catalog = Catalog {
            entries: BTreeMap::new(),
            rejected: Vec::new(),
            io,
            scratch,
        };
        for (name, base) in names {
            match catalog.register(&name, &base, codecs, threads) {
                Ok(()) => {}
                Err(e) => catalog.rejected.push((name, e.to_string())),
            }
        }
        Ok(catalog)
    }

    /// Register one graph base under `name`. Verification failures
    /// (corrupt or truncated files) surface as the typed
    /// `GraphError`-derived error of the failing tier.
    fn register(
        &mut self,
        name: &str,
        base: &Path,
        codecs: &[Codec],
        threads: usize,
    ) -> Result<()> {
        let input = DiskGraph::open(base, &self.io)?;
        // The quick tier inside `open` cannot see a bit flip deep in a
        // large file; serving a graph certifies every byte of it.
        input.verify_full()?;
        let mut oriented = Vec::with_capacity(codecs.len());
        for &codec in codecs {
            let out = self
                .scratch
                .path()
                .join(name)
                .join(codec.name().replace('-', "_"));
            if let Some(parent) = out.parent() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| ClusterError::Io(pdtl_io::IoError::os("mkdir", parent, e)))?;
            }
            let (og, _) = orient_to_disk_with(&input, &out, threads, codec, &self.io)?;
            oriented.push((codec, og));
        }
        let vertices = input.num_vertices();
        let m_star = oriented
            .first()
            .map(|(_, og)| og.m_star())
            .unwrap_or_default();
        self.entries.insert(
            name.to_string(),
            Arc::new(CatalogEntry {
                input,
                vertices,
                m_star,
                oriented,
            }),
        );
        Ok(())
    }

    /// Names of the graphs being served.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Graphs that failed registration, with their typed error text.
    pub fn rejected(&self) -> &[(String, String)] {
        &self.rejected
    }

    /// The catalog rows a stats response carries.
    pub fn info(&self) -> Vec<CatalogGraphInfo> {
        self.entries
            .iter()
            .map(|(name, e)| CatalogGraphInfo {
                name: name.clone(),
                vertices: e.vertices,
                m_star: e.m_star,
            })
            .collect()
    }
}

// ---------------------------------------------------------------------
// Latency histogram
// ---------------------------------------------------------------------

/// Fixed power-of-two latency histogram: bucket `i` counts queries with
/// wall time in `[2^i, 2^{i+1})` microseconds. Lock-free to record,
/// 32 buckets cover 1µs to ~71 minutes.
struct Histogram {
    buckets: [AtomicU64; 32],
}

impl Histogram {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn record(&self, wall: Duration) {
        let micros = (wall.as_micros() as u64).max(1);
        let idx = (micros.ilog2() as usize).min(self.buckets.len() - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

// ---------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------

/// Serve-mode configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`"127.0.0.1:0"` = loopback, ephemeral port).
    pub addr: String,
    /// Bounded worker pool size: at most this many queries execute at
    /// once (admission may hold them below that).
    pub workers: usize,
    /// Cores used when a query asks for `cores = 0`.
    pub default_cores: usize,
    /// Total admission budget in edges across all in-flight queries.
    pub admission: MemoryBudget,
    /// Codecs to pre-orient each catalog graph for; a query for a
    /// codec outside this list is a typed rejection.
    pub codecs: Vec<Codec>,
    /// Orientation parallelism at registration.
    pub orient_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            default_cores: 2,
            admission: MemoryBudget::default(),
            codecs: vec![Codec::Raw, Codec::DeltaVarint],
            orient_threads: 4,
        }
    }
}

/// One admitted unit of work: the parsed query plus the connection to
/// answer on (shared, so the response outlives the connection thread).
struct Job {
    conn: Arc<TcpTransport>,
    id: u32,
    graph: String,
    op: QueryOperation,
    options: QueryOptions,
}

struct Shared {
    catalog: Catalog,
    config: ServeConfig,
    ledger: BudgetLedger,
    traffic: Arc<NetTraffic>,
    hist: Histogram,
    served: AtomicU64,
    failed: AtomicU64,
    inflight: AtomicU32,
    /// Responses that could not be delivered (client hung up mid-query).
    undeliverable: AtomicU64,
    /// Bytes read by MGT workers (their per-thread counters fold in
    /// here; catalog/graph loads are counted on `catalog.io` directly).
    mgt_bytes_read: AtomicU64,
    mgt_u32s_decoded: AtomicU64,
    stop: AtomicBool,
}

impl Shared {
    fn stats(&self) -> ServerStats {
        ServerStats {
            served: self.served.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            inflight: self.inflight.load(Ordering::Relaxed),
            rejected_graphs: self.catalog.rejected.len() as u32,
            bytes_read: self.catalog.io.bytes_read() + self.mgt_bytes_read.load(Ordering::Relaxed),
            u32s_decoded: self.catalog.io.u32s_decoded()
                + self.mgt_u32s_decoded.load(Ordering::Relaxed),
            admitted_peak: self.ledger.peak(),
            budget_total: self.ledger.total(),
            latency_buckets: self.hist.snapshot(),
            graphs: self.catalog.info(),
        }
    }
}

/// A running serve-mode daemon. Spawned threads: one acceptor, one per
/// live connection, and a bounded worker pool. Use
/// [`shutdown`](Self::shutdown) (or send [`Message::Shutdown`] from a
/// client and [`wait`](Self::wait)) to drain and join them.
pub struct Server {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
    jobs_tx: Option<Sender<Job>>,
}

impl Server {
    /// Bind, spawn the worker pool and the accept loop, and return.
    pub fn spawn(catalog: Catalog, config: ServeConfig) -> Result<Server> {
        if config.workers == 0 || config.default_cores == 0 {
            return Err(ClusterError::Config(
                "serve: workers and default_cores must be >= 1".into(),
            ));
        }
        let listener = TcpListener::bind(&config.addr)
            .map_err(|e| ClusterError::Io(pdtl_io::IoError::os("bind", &config.addr, e)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ClusterError::Io(pdtl_io::IoError::os("local_addr", &config.addr, e)))?;

        let ledger = BudgetLedger::new(config.admission);
        let shared = Arc::new(Shared {
            catalog,
            ledger,
            traffic: NetTraffic::new(),
            hist: Histogram::new(),
            served: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            inflight: AtomicU32::new(0),
            undeliverable: AtomicU64::new(0),
            mgt_bytes_read: AtomicU64::new(0),
            mgt_u32s_decoded: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            config,
        });

        let (jobs_tx, jobs_rx) = unbounded::<Job>();
        let workers = (0..shared.config.workers)
            .map(|_| {
                let shared = shared.clone();
                let rx: Receiver<Job> = jobs_rx.clone();
                std::thread::spawn(move || {
                    // `recv` errors only once every sender is dropped —
                    // the shutdown drain: finish what is queued, exit.
                    while let Ok(job) = rx.recv() {
                        run_query(&shared, job);
                    }
                })
            })
            .collect();

        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let shared = shared.clone();
            let conns = conns.clone();
            let jobs_tx = jobs_tx.clone();
            std::thread::spawn(move || loop {
                match listener.accept() {
                    Ok((stream, _)) => {
                        if shared.stop.load(Ordering::SeqCst) {
                            return; // the wake-up connection
                        }
                        let shared = shared.clone();
                        let jobs_tx = jobs_tx.clone();
                        let handle =
                            std::thread::spawn(move || serve_conn(&shared, stream, &jobs_tx));
                        conns.lock().push(handle);
                    }
                    Err(_) => {
                        if shared.stop.load(Ordering::SeqCst) {
                            return;
                        }
                    }
                }
            })
        };

        Ok(Server {
            shared,
            addr,
            accept: Some(accept),
            workers,
            conns,
            jobs_tx: Some(jobs_tx),
        })
    }

    /// The bound address (`host:port`), for clients.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// The aggregate counters, as a stats response would report them.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Block until a client requests shutdown ([`Message::Shutdown`]),
    /// then drain and join. Returns the final counters.
    pub fn wait(mut self) -> ServerStats {
        while !self.shared.stop.load(Ordering::SeqCst) {
            std::thread::sleep(POLL);
        }
        self.finish();
        self.shared.stats()
    }

    /// Stop accepting, drain in-flight queries, join every thread, and
    /// return the final counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.finish();
        self.shared.stats()
    }

    fn finish(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection; the
        // acceptor re-checks `stop` and returns.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Connection threads notice `stop` within one POLL and exit,
        // dropping their job senders.
        for h in self.conns.lock().drain(..) {
            let _ = h.join();
        }
        // With every sender gone the channel closes; workers finish the
        // jobs already queued (the drain) and exit.
        self.jobs_tx.take();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept.is_some() || !self.workers.is_empty() {
            self.finish();
        }
    }
}

/// Per-connection loop: parse requests, enqueue queries, answer stats
/// inline. Returns on client disconnect, protocol garbage, or server
/// stop; a [`Message::Shutdown`] triggers the *daemon* shutdown (the
/// graceful path `pdtl query --shutdown` takes).
fn serve_conn(shared: &Arc<Shared>, stream: TcpStream, jobs: &Sender<Job>) {
    let Ok(transport) = TcpTransport::from_stream(stream, shared.traffic.clone()) else {
        return;
    };
    let conn = Arc::new(transport);
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match conn.recv_deadline(POLL) {
            Ok(Message::Query {
                id,
                graph,
                op,
                options,
            }) => {
                let job = Job {
                    conn: conn.clone(),
                    id,
                    graph,
                    op,
                    options,
                };
                if jobs.send(job).is_err() {
                    // Shutdown raced the enqueue; the client sees the
                    // rejection rather than silence.
                    let _ = conn.send(&Message::QueryError {
                        id,
                        detail: "server is shutting down".into(),
                    });
                    return;
                }
            }
            Ok(Message::StatsRequest) => {
                if conn
                    .send(&Message::StatsResult {
                        stats: shared.stats(),
                    })
                    .is_err()
                {
                    return;
                }
            }
            Ok(Message::Shutdown) => {
                shared.stop.store(true, Ordering::SeqCst);
                return;
            }
            Ok(other) => {
                // A cluster-protocol message on a serve socket: typed
                // rejection, connection stays up.
                let _ = conn.send(&Message::QueryError {
                    id: 0,
                    detail: format!("unexpected message in serve mode: {}", kind_name(&other)),
                });
            }
            Err(ClusterError::Timeout { .. }) => continue,
            Err(_) => return, // disconnect or garbage: drop the connection
        }
    }
}

fn kind_name(msg: &Message) -> &'static str {
    match msg {
        Message::Config { .. } => "Config",
        Message::Results { .. } => "Results",
        Message::Triangles { .. } => "Triangles",
        Message::NodeError { .. } => "NodeError",
        Message::Progress { .. } => "Progress",
        Message::Shutdown => "Shutdown",
        Message::Query { .. } => "Query",
        Message::QueryResult { .. } => "QueryResult",
        Message::QueryError { .. } => "QueryError",
        Message::StatsRequest => "StatsRequest",
        Message::StatsResult { .. } => "StatsResult",
    }
}

/// The scalar payload of a successful query.
struct Reply {
    triangles: u64,
    value_bits: u64,
    aux: u64,
    workers: Vec<WorkerSummary>,
    triples: Vec<(u32, u32, u32)>,
}

/// Execute one admitted job end to end and answer on its connection.
/// Every failure path sends a [`Message::QueryError`]; none of them
/// touches the daemon's health.
fn run_query(shared: &Shared, job: Job) {
    let start = Instant::now();
    shared.inflight.fetch_add(1, Ordering::SeqCst);
    let outcome = execute(shared, &job);
    shared.inflight.fetch_sub(1, Ordering::SeqCst);
    let wall = start.elapsed();
    shared.hist.record(wall);
    let response = match outcome {
        Ok(reply) => {
            shared.served.fetch_add(1, Ordering::Relaxed);
            Message::QueryResult {
                id: job.id,
                triangles: reply.triangles,
                value_bits: reply.value_bits,
                aux: reply.aux,
                wall_nanos: wall.as_nanos() as u64,
                workers: reply.workers,
                triples: reply.triples,
            }
        }
        Err(detail) => {
            shared.failed.fetch_add(1, Ordering::Relaxed);
            Message::QueryError { id: job.id, detail }
        }
    };
    if job.conn.send(&response).is_err() {
        // The client hung up mid-query. The work is done, the ledger
        // lease is released, the daemon moves on.
        shared.undeliverable.fetch_add(1, Ordering::Relaxed);
    }
}

fn execute(shared: &Shared, job: &Job) -> std::result::Result<Reply, String> {
    let entry = shared
        .catalog
        .entries
        .get(&job.graph)
        .ok_or_else(|| format!("unknown graph {:?}", job.graph))?
        .clone();
    let opts = job.options;
    let cores = match opts.cores {
        0 => shared.config.default_cores,
        c if c > MAX_CORES => return Err(format!("cores {c} exceeds the cap of {MAX_CORES}")),
        c => c as usize,
    };
    validate_op(&job.op)?;

    // Worst-case resident cost in edges: each MGT worker holds up to a
    // budget's worth of chunk, and the analytics kernels additionally
    // materialise the graph (|E*| oriented edges / triples).
    let needs_graph = matches!(
        job.op,
        QueryOperation::Clustering | QueryOperation::KTruss { .. } | QueryOperation::Doulion { .. }
    );
    let cost = (cores as u64) * opts.budget_edges + if needs_graph { entry.m_star } else { 0 };
    let _lease = shared
        .ledger
        .admit(cost)
        .map_err(|e| format!("admission: {e}"))?;

    match job.op {
        QueryOperation::Count => {
            let (report, _) = run_mgt(shared, &entry, &opts, cores, false)?;
            Ok(reply_from(&report, 0, 0, vec![]))
        }
        QueryOperation::List { limit } => {
            let (report, mut triples) = run_mgt(shared, &entry, &opts, cores, true)?;
            let listed = triples.len() as u64;
            triples.truncate(limit as usize);
            Ok(reply_from(&report, 0, listed, triples))
        }
        QueryOperation::Clustering => {
            let (report, triples) = run_mgt(shared, &entry, &opts, cores, true)?;
            let g = entry
                .input
                .load_csr(&shared.catalog.io)
                .map_err(|e| e.to_string())?;
            let global = clustering::global_clustering(&g, &triples);
            let trans = clustering::transitivity(&g, report.triangles);
            Ok(reply_from(
                &report,
                global.to_bits(),
                trans.to_bits(),
                vec![],
            ))
        }
        QueryOperation::KTruss { k } => {
            let (report, triples) = run_mgt(shared, &entry, &opts, cores, true)?;
            let g = entry
                .input
                .load_csr(&shared.catalog.io)
                .map_err(|e| e.to_string())?;
            let td = ktruss::truss_decomposition(&g, &triples);
            let edges = td.truss_edges(k).len() as u64;
            Ok(reply_from(&report, edges, td.max_k() as u64, vec![]))
        }
        QueryOperation::Doulion {
            p_ppm,
            seed,
            trials,
        } => {
            let g = entry
                .input
                .load_csr(&shared.catalog.io)
                .map_err(|e| e.to_string())?;
            let p = f64::from(p_ppm) / 1_000_000.0;
            let estimate =
                pdtl_analytics::doulion_mean(&g, p, trials, seed).map_err(|e| e.to_string())?;
            Ok(Reply {
                triangles: 0,
                value_bits: estimate.to_bits(),
                aux: u64::from(trials),
                workers: vec![],
                triples: vec![],
            })
        }
    }
}

fn validate_op(op: &QueryOperation) -> std::result::Result<(), String> {
    match *op {
        QueryOperation::List { limit } if limit > MAX_LIST_LIMIT => Err(format!(
            "list limit {limit} exceeds the cap of {MAX_LIST_LIMIT}"
        )),
        QueryOperation::Doulion { p_ppm, trials, .. } => {
            if p_ppm == 0 || p_ppm > 1_000_000 {
                Err(format!("doulion p must be in (0, 1]: got {p_ppm} ppm"))
            } else if trials == 0 || trials > MAX_TRIALS {
                Err(format!("doulion trials must be in 1..={MAX_TRIALS}"))
            } else {
                Ok(())
            }
        }
        _ => Ok(()),
    }
}

fn reply_from(
    report: &RunReport,
    value_bits: u64,
    aux: u64,
    triples: Vec<(u32, u32, u32)>,
) -> Reply {
    Reply {
        triangles: report.triangles,
        value_bits,
        aux,
        workers: report.workers.iter().map(summarize).collect(),
        triples,
    }
}

/// What an engine run hands back to the per-operation dispatch: the
/// run report plus the collected triples (empty unless listing).
type MgtOutcome = std::result::Result<(RunReport, Vec<(u32, u32, u32)>), String>;

/// One MGT run against the catalog's warm oriented replica for the
/// query's codec, with the query's own backend/budget/latency knobs.
fn run_mgt(
    shared: &Shared,
    entry: &CatalogEntry,
    opts: &QueryOptions,
    cores: usize,
    listing: bool,
) -> MgtOutcome {
    let og = entry.oriented_for(opts.codec).ok_or_else(|| {
        format!(
            "codec {} is not in this server's catalog (serving: {})",
            opts.codec.name(),
            shared
                .config
                .codecs
                .iter()
                .map(|c| c.name())
                .collect::<Vec<_>>()
                .join(", ")
        )
    })?;
    let runner = LocalRunner::new(LocalConfig {
        cores,
        budget: MemoryBudget::edges(opts.budget_edges as usize),
        balance: BalanceStrategy::InDegree,
        mgt: MgtOptions {
            scan_pruning: opts.scan_pruning,
            backend: opts.backend,
            io_latency: Duration::from_micros(u64::from(opts.io_latency_us)),
            read_fault: None,
            codec: opts.codec,
        },
    })
    .map_err(|e| e.to_string())?;
    let (report, sinks) = if listing {
        runner
            .run_oriented_with_sinks(og, CollectSink::default)
            .map(|(r, sinks)| {
                let mut all = Vec::new();
                for s in sinks {
                    all.extend(s.triangles);
                }
                (r, all)
            })
            .map_err(|e| e.to_string())?
    } else {
        runner
            .run_oriented_with_sinks(og, || CountSink)
            .map(|(r, _)| (r, Vec::new()))
            .map_err(|e| e.to_string())?
    };
    let bytes: u64 = report.workers.iter().map(|w| w.io.bytes_read).sum();
    let decoded: u64 = report.workers.iter().map(|w| w.io.u32s_decoded).sum();
    shared.mgt_bytes_read.fetch_add(bytes, Ordering::Relaxed);
    shared
        .mgt_u32s_decoded
        .fetch_add(decoded, Ordering::Relaxed);
    Ok((report, sinks))
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// A decoded serve-mode answer.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryReply {
    /// Echoed request id.
    pub id: u32,
    /// Exact triangle count (0 where the operation has none).
    pub triangles: u64,
    /// Primary per-operation value (see [`Message::QueryResult`]).
    pub value_bits: u64,
    /// Secondary per-operation value.
    pub aux: u64,
    /// Server-side wall time of the query.
    pub wall: Duration,
    /// Per-worker MGT counters.
    pub workers: Vec<WorkerSummary>,
    /// Listed triples (`list` only).
    pub triples: Vec<(u32, u32, u32)>,
}

impl QueryReply {
    /// `value_bits` as the `f64` it encodes (clustering coefficient,
    /// DOULION estimate).
    pub fn value_f64(&self) -> f64 {
        f64::from_bits(self.value_bits)
    }

    /// `aux` as the `f64` it encodes (transitivity).
    pub fn aux_f64(&self) -> f64 {
        f64::from_bits(self.aux)
    }
}

/// A client connection to a serve-mode daemon: sequential queries over
/// one socket. Concurrency comes from many clients, exactly like real
/// traffic.
pub struct ServeClient {
    conn: TcpTransport,
    next_id: u32,
}

impl ServeClient {
    /// Connect to `addr` (`host:port`).
    pub fn connect(addr: &str) -> Result<Self> {
        Ok(Self {
            conn: TcpTransport::connect(addr, NetTraffic::new())?,
            next_id: 1,
        })
    }

    /// Send a query without waiting for the answer; returns the
    /// request id. Pair with [`recv_reply`](Self::recv_reply).
    pub fn send_query(
        &mut self,
        graph: &str,
        op: QueryOperation,
        options: QueryOptions,
    ) -> Result<u32> {
        let id = self.next_id;
        self.next_id += 1;
        self.conn.send(&Message::Query {
            id,
            graph: graph.into(),
            op,
            options,
        })?;
        Ok(id)
    }

    /// Receive the next answer. A server-side rejection surfaces as
    /// the typed [`ClusterError::Query`].
    pub fn recv_reply(&mut self) -> Result<QueryReply> {
        match self.conn.recv()? {
            Message::QueryResult {
                id,
                triangles,
                value_bits,
                aux,
                wall_nanos,
                workers,
                triples,
            } => Ok(QueryReply {
                id,
                triangles,
                value_bits,
                aux,
                wall: Duration::from_nanos(wall_nanos),
                workers,
                triples,
            }),
            Message::QueryError { id, detail } => Err(ClusterError::Query { id, detail }),
            other => Err(ClusterError::Protocol(format!(
                "unexpected serve-mode answer: {}",
                kind_name(&other)
            ))),
        }
    }

    /// Run one query to completion.
    pub fn query(
        &mut self,
        graph: &str,
        op: QueryOperation,
        options: QueryOptions,
    ) -> Result<QueryReply> {
        self.send_query(graph, op, options)?;
        self.recv_reply()
    }

    /// Fetch the server's aggregate counters.
    pub fn stats(&mut self) -> Result<ServerStats> {
        self.conn.send(&Message::StatsRequest)?;
        match self.conn.recv()? {
            Message::StatsResult { stats } => Ok(stats),
            other => Err(ClusterError::Protocol(format!(
                "unexpected stats answer: {}",
                kind_name(&other)
            ))),
        }
    }

    /// Ask the daemon to shut down gracefully (drain, then exit).
    pub fn shutdown(self) -> Result<()> {
        self.conn.send(&Message::Shutdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two_micros() {
        let h = Histogram::new();
        h.record(Duration::from_micros(1));
        h.record(Duration::from_micros(3));
        h.record(Duration::from_micros(300));
        h.record(Duration::from_secs(4000)); // beyond the top bucket
        let snap = h.snapshot();
        assert_eq!(snap[0], 1);
        assert_eq!(snap[1], 1);
        assert_eq!(snap[8], 1); // 300µs in [256, 512)
        assert_eq!(snap[31], 1); // clamped
        assert_eq!(snap.iter().sum::<u64>(), 4);
    }

    #[test]
    fn validate_rejects_bad_doulion_params() {
        assert!(validate_op(&QueryOperation::Doulion {
            p_ppm: 0,
            seed: 1,
            trials: 4
        })
        .is_err());
        assert!(validate_op(&QueryOperation::Doulion {
            p_ppm: 2_000_000,
            seed: 1,
            trials: 4
        })
        .is_err());
        assert!(validate_op(&QueryOperation::Doulion {
            p_ppm: 500_000,
            seed: 1,
            trials: 0
        })
        .is_err());
        assert!(validate_op(&QueryOperation::Doulion {
            p_ppm: 500_000,
            seed: 1,
            trials: 16
        })
        .is_ok());
        assert!(validate_op(&QueryOperation::Count).is_ok());
    }

    #[test]
    fn catalog_registers_and_rejects_independently() {
        use pdtl_graph::gen::classic::complete;
        let dir = std::env::temp_dir().join(format!("pdtl-catalog-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let stats = IoStats::new();
        let good = complete(8).unwrap();
        DiskGraph::write(&good, dir.join("good"), &stats).unwrap();
        let bad = complete(9).unwrap();
        let bad_dg = DiskGraph::write(&bad, dir.join("bad"), &stats).unwrap();
        // Flip a bit deep in the adjacency: the quick tier passes, the
        // full digest at registration must not.
        let mut bytes = std::fs::read(bad_dg.adj_path()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        std::fs::write(bad_dg.adj_path(), &bytes).unwrap();

        let work = dir.join("work");
        let catalog = Catalog::open(&dir, &work, &[Codec::Raw], 2).unwrap();
        assert_eq!(catalog.names(), vec!["good".to_string()]);
        assert_eq!(catalog.rejected().len(), 1);
        assert_eq!(catalog.rejected()[0].0, "bad");
        assert!(
            catalog.rejected()[0].1.contains("corrupt")
                || catalog.rejected()[0].1.contains("truncated"),
            "typed error expected: {}",
            catalog.rejected()[0].1
        );
        let info = catalog.info();
        assert_eq!(info.len(), 1);
        assert_eq!(info[0].m_star, good.num_edges());
        drop(catalog);
        assert!(!work.exists(), "catalog scratch cleaned on drop");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
