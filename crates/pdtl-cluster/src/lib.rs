//! PDTL distributed runtime.
//!
//! Implements the master/worker protocol of the paper's Figure 1 on a
//! *simulated cluster*: `N` node tasks × `P` worker threads each, every
//! node owning a private on-disk replica of the oriented graph and a
//! per-core memory budget. The protocol steps are exactly the paper's:
//!
//! 1. the master orients the graph (once, in parallel);
//! 2. the oriented graph is **replicated** to every node's local disk —
//!    the `Θ(N|E|)` term of the network bound — with the master starting
//!    its own computation before the transfers finish;
//! 3. each processor receives a configuration `C_{i,j}`: its memory
//!    budget and the contiguous pivot-edge range it is responsible for;
//! 4. nodes run MGT per core and send counts (and triangle lists, when
//!    listing) back; the master sums them atomically.
//!
//! Every byte that would cross the network — configurations, graph
//! replicas, results, triangle batches — passes through a counted
//! [`transport`], so Theorem IV.3's `Θ(NP + N|E| + T)` network bound is
//! measured, and a configurable [`netmodel`] converts bytes into modeled
//! copy times (Table III's copy columns) on any host.

pub mod error;
pub mod fault;
pub mod message;
pub mod netmodel;
pub mod node;
pub mod report;
pub mod runner;
pub mod server;
pub mod tcp;
pub mod transport;

pub use error::{ClusterError, Result};
pub use fault::{FaultKind, FaultPlan, FaultSpec, FAULT_ENV};
pub use message::{
    CatalogGraphInfo, Message, NodeDirectives, NodeFault, QueryOperation, QueryOptions, ServerStats,
};
pub use netmodel::{NetModel, NetTraffic};
pub use report::{ClusterReport, NodeReport};
pub use runner::{ClusterConfig, ClusterRunner, FailurePolicy, RetryPolicy, TransportKind};
pub use server::{Catalog, QueryReply, ServeClient, ServeConfig, Server};
