//! The distributed master: orchestration of Figure 1.
//!
//! `ClusterRunner::run` executes the full protocol on a simulated
//! cluster of `N` node tasks × `P` workers:
//!
//! 1. orient the input once, with the master's `P` cores;
//! 2. split the oriented adjacency into `N·P` contiguous ranges;
//! 3. start the master's own node task immediately (the paper: "the
//!    master starts the triangle counting operations before the network
//!    transfer has finished"), then replicate the oriented graph to each
//!    remote node in turn, starting each node as soon as its copy lands;
//! 4. gather `Results` (and `Triangles`) messages and sum.

use std::path::Path;
use std::time::{Duration, Instant};

use pdtl_core::balance::{split_ranges, BalanceStrategy};
use pdtl_core::mgt::MgtOptions;
use pdtl_core::orient::orient_to_disk;
use pdtl_graph::DiskGraph;
use pdtl_io::{IoStats, MemoryBudget};

use crate::error::{ClusterError, Result};
use crate::message::{Message, WorkerConfig};
use crate::netmodel::{NetModel, NetTraffic};
use crate::node::serve_node;
use crate::report::{ClusterReport, NetSnapshot, NodeReport};
use crate::transport::{in_proc_pair, TcpTransport, Transport};

/// Which transport carries the master/node protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process channels (the default simulated cluster).
    #[default]
    InProc,
    /// Real TCP sockets on loopback — one listener per node task.
    Tcp,
}

/// Configuration of a distributed run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes `N` (>= 1; node 0 is the master).
    pub nodes: usize,
    /// Workers per node `P`.
    pub cores_per_node: usize,
    /// Memory budget per worker (the paper's `M`).
    pub budget: MemoryBudget,
    /// Range-splitting strategy.
    pub balance: BalanceStrategy,
    /// Collect full triangle lists (the `Θ(T)` network term).
    pub listing: bool,
    /// Interconnect model for modeled copy times.
    pub net: NetModel,
    /// Transport carrying the protocol messages.
    pub transport: TransportKind,
    /// MGT engine knobs, shipped to every worker via its
    /// [`WorkerConfig`].
    pub mgt: MgtOptions,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            nodes: 2,
            cores_per_node: 2,
            budget: MemoryBudget::default(),
            balance: BalanceStrategy::InDegree,
            listing: false,
            net: NetModel::default(),
            transport: TransportKind::default(),
            mgt: MgtOptions::default(),
        }
    }
}

/// The distributed PDTL runner (master side).
#[derive(Debug, Clone)]
pub struct ClusterRunner {
    config: ClusterConfig,
}

impl ClusterRunner {
    /// Build a runner, validating the configuration.
    pub fn new(config: ClusterConfig) -> Result<Self> {
        if config.nodes == 0 {
            return Err(ClusterError::Config("nodes must be >= 1".into()));
        }
        if config.cores_per_node == 0 {
            return Err(ClusterError::Config("cores_per_node must be >= 1".into()));
        }
        Ok(Self { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Run the full distributed protocol on the undirected PDTL-format
    /// graph at `input`, using `work_dir` for the oriented graph and the
    /// per-node replicas.
    pub fn run(&self, input: &DiskGraph, work_dir: &Path) -> Result<ClusterReport> {
        let cfg = &self.config;
        std::fs::create_dir_all(work_dir)
            .map_err(|e| pdtl_io::IoError::os("mkdir", work_dir, e))?;
        let wall_start = Instant::now();
        let master_stats = IoStats::new();
        let traffic = NetTraffic::new();

        // 1. Orientation, once, on the master's cores.
        let oriented_base = work_dir.join("oriented");
        let (og, orientation) =
            orient_to_disk(input, &oriented_base, cfg.cores_per_node, &master_stats)?;

        // 2. N*P contiguous ranges.
        let in_degrees = og
            .in_degrees()
            .expect("orientation records original degrees");
        let total_workers = cfg.nodes * cfg.cores_per_node;
        let (ranges, balancing) =
            split_ranges(&og.offsets, &in_degrees, total_workers, cfg.balance);

        // 3. Start node tasks. Each node gets an in-proc transport and a
        //    thread running the generic `serve_node` loop.
        struct PendingNode {
            id: usize,
            endpoint: Box<dyn Transport>,
            copy: Duration,
            copy_bytes: u64,
            started: Instant,
            handle: std::thread::JoinHandle<Result<()>>,
        }

        let mut pending: Vec<PendingNode> = Vec::with_capacity(cfg.nodes);
        let mut spawn_node = |id: usize, base: String, copy: Duration, copy_bytes: u64| {
            let (master_end, handle): (Box<dyn Transport>, std::thread::JoinHandle<Result<()>>) =
                match cfg.transport {
                    TransportKind::InProc => {
                        let (master_end, node_end) = in_proc_pair(traffic.clone());
                        let handle = std::thread::spawn(move || serve_node(&node_end));
                        (Box::new(master_end), handle)
                    }
                    TransportKind::Tcp => {
                        let node = crate::tcp::TcpNode::spawn(traffic.clone())?;
                        let addr = node.addr.clone();
                        let handle = std::thread::spawn(move || node.join());
                        let master_end = TcpTransport::connect(&addr, traffic.clone())?;
                        (Box::new(master_end), handle)
                    }
                };
            let workers: Vec<WorkerConfig> = ranges
                [id * cfg.cores_per_node..(id + 1) * cfg.cores_per_node]
                .iter()
                .map(|r| WorkerConfig {
                    start: r.start,
                    end: r.end,
                    budget_edges: cfg.budget.edges as u64,
                    scan_pruning: cfg.mgt.scan_pruning,
                    backend: cfg.mgt.backend,
                    io_latency_us: cfg.mgt.io_latency.as_micros().min(u32::MAX as u128) as u32,
                })
                .collect();
            let started = Instant::now();
            master_end.send(&Message::Config {
                node: id as u32,
                graph_base: base,
                workers,
                listing: cfg.listing,
            })?;
            pending.push(PendingNode {
                id,
                endpoint: master_end,
                copy,
                copy_bytes,
                started,
                handle,
            });
            Ok::<(), ClusterError>(())
        };

        // Master's node starts immediately on the original oriented copy.
        spawn_node(
            0,
            oriented_base.to_string_lossy().into_owned(),
            Duration::ZERO,
            0,
        )?;

        // Remote nodes start as their replicas land ("the nodes start
        // calculating as soon as they receive the files"). The replica
        // ships the rank map and scan bounds alongside `.deg`/`.adj`.
        for id in 1..cfg.nodes {
            let node_base = work_dir.join(format!("node{id}")).join("oriented");
            let copy_start = Instant::now();
            let bytes = og.replicate_to(&node_base, &master_stats)?;
            let copy = copy_start.elapsed();
            traffic.add_graph(bytes);
            spawn_node(id, node_base.to_string_lossy().into_owned(), copy, bytes)?;
        }

        // 4. Gather.
        let mut nodes: Vec<NodeReport> = Vec::with_capacity(cfg.nodes);
        let mut listed: Option<Vec<(u32, u32, u32)>> = cfg.listing.then(Vec::new);
        for p in pending {
            let mut workers = None;
            let mut node_triples: Vec<(u32, u32, u32)> = Vec::new();
            while workers.is_none() {
                match p.endpoint.recv()? {
                    Message::Results { workers: w, .. } => workers = Some(w),
                    Message::Triangles { triples, .. } => node_triples.extend(triples),
                    Message::NodeError { node, detail } => {
                        return Err(ClusterError::Protocol(format!(
                            "node {node} failed: {detail}"
                        )));
                    }
                    Message::Config { .. } => {
                        return Err(ClusterError::Protocol(
                            "master received a Config message".into(),
                        ));
                    }
                }
            }
            let wall = p.started.elapsed();
            p.handle
                .join()
                .map_err(|_| ClusterError::NodePanic(p.id))??;
            if let Some(list) = listed.as_mut() {
                list.extend(node_triples);
            }
            nodes.push(NodeReport {
                node: p.id,
                copy: p.copy,
                copy_bytes: p.copy_bytes,
                workers: workers.unwrap(),
                wall,
            });
        }
        nodes.sort_by_key(|n| n.node);

        let triangles = nodes.iter().map(|n| n.triangles()).sum();
        Ok(ClusterReport {
            triangles,
            orientation,
            balancing,
            nodes,
            network: NetSnapshot {
                config: traffic.config_bytes(),
                graph: traffic.graph_bytes(),
                result: traffic.result_bytes(),
                triangles: traffic.triangle_bytes(),
            },
            wall: wall_start.elapsed(),
            listed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdtl_core::theory;
    use pdtl_graph::gen::rmat::rmat;
    use pdtl_graph::verify::triangle_count;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("pdtl-cluster-tests")
            .join(format!("{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_input(tag: &str, seed: u64) -> (DiskGraph, u64, u64, u32) {
        let g = rmat(7, seed).unwrap();
        let stats = IoStats::new();
        let dg = DiskGraph::write(&g, tmpdir(tag).join("g"), &stats).unwrap();
        (dg, triangle_count(&g), g.num_edges(), g.num_vertices())
    }

    fn cfg(nodes: usize, cores: usize) -> ClusterConfig {
        ClusterConfig {
            nodes,
            cores_per_node: cores,
            budget: MemoryBudget::edges(512),
            balance: BalanceStrategy::InDegree,
            listing: false,
            net: NetModel::default(),
            transport: TransportKind::default(),
            mgt: Default::default(),
        }
    }

    #[test]
    fn counts_match_oracle_across_cluster_shapes() {
        let (input, expected, _, _) = write_input("shapes", 51);
        for (nodes, cores) in [(1, 1), (1, 4), (2, 2), (3, 1), (4, 2)] {
            let runner = ClusterRunner::new(cfg(nodes, cores)).unwrap();
            let report = runner
                .run(&input, &tmpdir(&format!("shapes-{nodes}x{cores}")))
                .unwrap();
            assert_eq!(report.triangles, expected, "{nodes}x{cores}");
            assert_eq!(report.nodes.len(), nodes);
            assert_eq!(report.node_triangle_sum(), expected);
            assert!(report.nodes.iter().all(|n| n.workers.len() == cores));
        }
    }

    #[test]
    fn replication_traffic_matches_graph_size() {
        let (input, _, _, _) = write_input("traffic", 52);
        let runner = ClusterRunner::new(cfg(3, 2)).unwrap();
        let report = runner.run(&input, &tmpdir("traffic-run")).unwrap();
        // graph copied to N-1 = 2 remote nodes
        let oriented_bytes: u64 = report.nodes[1].copy_bytes;
        assert!(oriented_bytes > 0);
        assert_eq!(report.network.graph, 2 * oriented_bytes);
        assert!(report.network.config > 0);
        assert!(report.network.result > 0);
        assert_eq!(report.network.triangles, 0, "no listing traffic");
    }

    #[test]
    fn network_within_theorem_iv3_bound() {
        let (input, t, m, _) = write_input("bound", 53);
        let (nodes, cores) = (4usize, 2usize);
        let runner = ClusterRunner::new(cfg(nodes, cores)).unwrap();
        let report = runner.run(&input, &tmpdir("bound-run")).unwrap();
        let bound = theory::pdtl_network_bound_bytes(nodes as u64, cores as u64, m, 0);
        assert!(
            report.network.total() <= 4 * bound,
            "traffic {} exceeds 4x bound {}",
            report.network.total(),
            bound
        );
        let _ = t;
    }

    #[test]
    fn listing_collects_every_triangle_with_traffic() {
        let (input, expected, _, _) = write_input("listing", 54);
        let mut c = cfg(2, 2);
        c.listing = true;
        let runner = ClusterRunner::new(c).unwrap();
        let report = runner.run(&input, &tmpdir("listing-run")).unwrap();
        let listed = report.listed.as_ref().unwrap();
        assert_eq!(listed.len() as u64, expected);
        assert!(report.network.triangles >= expected * 12);
        // no duplicates across the cluster
        let mut canon: Vec<_> = listed
            .iter()
            .map(|&(a, b, c)| {
                let mut t = [a, b, c];
                t.sort_unstable();
                t
            })
            .collect();
        canon.sort_unstable();
        canon.dedup();
        assert_eq!(canon.len() as u64, expected);
    }

    #[test]
    fn remote_nodes_record_copy_times() {
        let (input, _, _, _) = write_input("copy", 55);
        let runner = ClusterRunner::new(cfg(3, 1)).unwrap();
        let report = runner.run(&input, &tmpdir("copy-run")).unwrap();
        assert_eq!(report.nodes[0].copy_bytes, 0, "master owns the original");
        assert!(report.nodes[1].copy_bytes > 0);
        assert!(report.nodes[2].copy_bytes > 0);
        assert!(report.avg_copy() > Duration::ZERO);
        assert!(report.modeled_avg_copy(&NetModel::default()) > 0.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ClusterRunner::new(cfg(0, 1)).is_err());
        assert!(ClusterRunner::new(cfg(1, 0)).is_err());
    }

    #[test]
    fn tcp_transport_full_protocol() {
        let (input, expected, _, _) = write_input("tcp", 57);
        let mut c = cfg(3, 2);
        c.transport = TransportKind::Tcp;
        let report = ClusterRunner::new(c)
            .unwrap()
            .run(&input, &tmpdir("tcp-run"))
            .unwrap();
        assert_eq!(report.triangles, expected);
        // TCP frames include 4-byte headers, so traffic is strictly
        // larger than the in-proc encoding but still within the bound.
        assert!(report.network.config > 0);
    }

    #[test]
    fn equal_edges_strategy_also_correct() {
        let (input, expected, _, _) = write_input("naive", 56);
        let mut c = cfg(2, 3);
        c.balance = BalanceStrategy::EqualEdges;
        let report = ClusterRunner::new(c)
            .unwrap()
            .run(&input, &tmpdir("naive-run"))
            .unwrap();
        assert_eq!(report.triangles, expected);
    }
}
