//! The distributed master: orchestration of Figure 1, with failure
//! handling.
//!
//! `ClusterRunner::run` executes the full protocol on a simulated
//! cluster of `N` node tasks × `P` workers:
//!
//! 1. orient the input once, with the master's `P` cores;
//! 2. split the oriented adjacency into `N·P` contiguous ranges;
//! 3. start the master's own node task immediately (the paper: "the
//!    master starts the triangle counting operations before the network
//!    transfer has finished"), then replicate the oriented graph to each
//!    remote node in turn, starting each node as soon as its copy lands;
//! 4. gather `Results` (and `Triangles`) messages and sum.
//!
//! # Failure model
//!
//! Under the default [`FailurePolicy::Tolerant`] the gather phase is an
//! event loop that polls every live node with a short
//! [`Transport::recv_deadline`] and drives three mechanisms:
//!
//! * **Detection** — nodes heartbeat (`Message::Progress`) every
//!   [`ClusterConfig::heartbeat`] while working; a node silent for
//!   longer than [`ClusterConfig::node_deadline`] is declared failed,
//!   distinguishing a wedged node from a merely slow one. Disconnects
//!   and `NodeError` replies fail a node immediately.
//! * **Retry** — a failed node is respawned (same id, same replica) up
//!   to [`RetryPolicy::max_attempts`] dispatches, with deterministic
//!   exponential backoff between attempts.
//! * **Reassignment** — a node that exhausts its budget is recorded in
//!   [`ClusterReport::failed_nodes`] and its unfinished ranges are
//!   re-dispatched to surviving nodes (every node holds a full
//!   replica, so any node can compute any range). If *no* node
//!   survives, the master computes the orphans itself on an in-process
//!   fallback node. Each range is counted exactly once: results from a
//!   dispatch that later fails are discarded wholesale, and a range's
//!   summary is committed only when its `Results` message validates.
//!
//! [`FailurePolicy::FailFast`] is the escape hatch that preserves the
//! original semantics: the first failure aborts the run with the
//! original error.

use std::path::Path;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pdtl_core::balance::{split_ranges, BalanceStrategy};
use pdtl_core::mgt::MgtOptions;
use pdtl_core::orient::orient_to_disk_with;
use pdtl_graph::{DiskGraph, Manifest};
use pdtl_io::diskfault::{DiskFaultKind, DiskFaultSpec};
use pdtl_io::{IoStats, MemoryBudget};

use crate::error::{ClusterError, Result};
use crate::fault::{FaultPlan, ResolvedFaults};
use crate::message::{Message, NodeDirectives, NodeFault, WorkerConfig, WorkerSummary};
use crate::netmodel::{NetModel, NetTraffic};
use crate::node::serve_node;
use crate::report::{ClusterReport, NetSnapshot, NodeReport};
use crate::transport::{in_proc_pair, TcpTransport, Transport};

/// How long each poll of a live node waits before rotating to the next.
const POLL: Duration = Duration::from_millis(10);

/// Which transport carries the master/node protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportKind {
    /// In-process channels (the default simulated cluster).
    #[default]
    InProc,
    /// Real TCP sockets on loopback — one listener per node task.
    Tcp,
}

/// Retry/backoff parameters for replica copies and node dispatches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total dispatch attempts per node (>= 1): the first dispatch
    /// plus up to `max_attempts - 1` respawns.
    pub max_attempts: u32,
    /// Base backoff delay; the wait before retry `k` grows
    /// exponentially from it.
    pub base_delay: Duration,
    /// Seed for the deterministic backoff jitter, so retry schedules
    /// reproduce run over run.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay: Duration::from_millis(5),
            seed: 0x9D71,
        }
    }
}

impl RetryPolicy {
    /// Deterministic backoff before retrying `node` after `attempt`
    /// failed dispatches: exponential in the attempt, plus seeded
    /// jitter of up to one base delay so simultaneous respawns don't
    /// stampede in lockstep.
    pub fn backoff(&self, node: usize, attempt: u32) -> Duration {
        let exp = self.base_delay.saturating_mul(1u32 << attempt.min(10));
        let mut state = self.seed ^ ((node as u64) << 32) ^ u64::from(attempt);
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let jitter_ms = (state >> 33) % self.base_delay.as_millis().max(1) as u64;
        exp + Duration::from_millis(jitter_ms)
    }
}

/// How the master reacts to node failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailurePolicy {
    /// Abort the run on the first node failure with the original
    /// error — the behaviour before fault tolerance existed.
    FailFast,
    /// Detect failures, respawn with backoff, and reassign the ranges
    /// of nodes that exhaust their retry budget (the default).
    Tolerant(RetryPolicy),
}

impl Default for FailurePolicy {
    fn default() -> Self {
        FailurePolicy::Tolerant(RetryPolicy::default())
    }
}

/// Configuration of a distributed run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of nodes `N` (>= 1; node 0 is the master).
    pub nodes: usize,
    /// Workers per node `P`.
    pub cores_per_node: usize,
    /// Memory budget per worker (the paper's `M`).
    pub budget: MemoryBudget,
    /// Range-splitting strategy.
    pub balance: BalanceStrategy,
    /// Collect full triangle lists (the `Θ(T)` network term).
    pub listing: bool,
    /// Interconnect model for modeled copy times.
    pub net: NetModel,
    /// Transport carrying the protocol messages.
    pub transport: TransportKind,
    /// MGT engine knobs, shipped to every worker via its
    /// [`WorkerConfig`].
    pub mgt: MgtOptions,
    /// Failure handling: retry/reassign (default) or abort on the
    /// first error.
    pub policy: FailurePolicy,
    /// Interval between node `Progress` heartbeats while workers run;
    /// zero disables heartbeats (and with them the silence deadline).
    pub heartbeat: Duration,
    /// How long a node may stay silent — no heartbeat, no reply —
    /// before the master declares it failed. Enforced only under
    /// [`FailurePolicy::Tolerant`] and only when heartbeats are on;
    /// keep it several multiples of `heartbeat`.
    pub node_deadline: Duration,
    /// Injected faults. The default reads the `PDTL_FAULT` environment
    /// variable (the same override pattern as `PDTL_IO_BACKEND`),
    /// falling back to no faults.
    pub fault: FaultPlan,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            nodes: 2,
            cores_per_node: 2,
            budget: MemoryBudget::default(),
            balance: BalanceStrategy::InDegree,
            listing: false,
            net: NetModel::default(),
            transport: TransportKind::default(),
            mgt: MgtOptions::default(),
            policy: FailurePolicy::default(),
            heartbeat: Duration::from_millis(50),
            node_deadline: Duration::from_secs(5),
            fault: FaultPlan::default_from_env(),
        }
    }
}

/// The serving thread behind a dispatch, joined to surface its error.
type NodeHandle = JoinHandle<Result<()>>;

/// A live dispatch: one open connection to a serving node thread.
struct Live {
    endpoint: Box<dyn Transport>,
    handle: NodeHandle,
    /// Global range indices of the in-flight dispatch.
    assigned: Vec<usize>,
    /// Whether this dispatch consumed injected-fault charges (initial
    /// and respawn dispatches do; recovery dispatches never do — the
    /// plan models remote hosts failing, not the recovery path).
    faulted: bool,
    /// Triangles buffered for the current dispatch; merged into the
    /// run's listing only when its `Results` validates, discarded on
    /// failure, so a re-dispatched range never lists twice.
    triples: Vec<(u32, u32, u32)>,
    last_heard: Instant,
    started: Instant,
}

/// Liveness of one node slot.
enum SlotState {
    /// A dispatch is in flight.
    Running(Live),
    /// The last dispatch completed; the connection stays open so the
    /// slot can absorb reassigned ranges or a final `Shutdown`.
    Done(Live),
    /// Not serving: never started, terminally failed, or shut down.
    Dead,
}

/// One node's accumulated account across all its dispatches.
struct Slot {
    id: usize,
    /// Replica path dispatches against this slot read from.
    base: String,
    copy: Duration,
    copy_bytes: u64,
    /// Dispatch attempts made (the retry budget counts these).
    attempts: u32,
    state: SlotState,
    /// Committed per-worker summaries, in acceptance order.
    summaries: Vec<WorkerSummary>,
    /// Busy wall time summed over successful dispatches.
    wall: Duration,
    /// Ranges absorbed from failed peers.
    reassigned: u64,
    /// Always spawn this slot's node in-process (the master-local
    /// fallback), regardless of the configured transport.
    local: bool,
    last_error: String,
}

impl Slot {
    fn new(id: usize, base: String, copy: Duration, copy_bytes: u64, local: bool) -> Self {
        Slot {
            id,
            base,
            copy,
            copy_bytes,
            attempts: 0,
            state: SlotState::Dead,
            summaries: Vec::new(),
            wall: Duration::ZERO,
            reassigned: 0,
            local,
            last_error: String::new(),
        }
    }
}

/// Mutable state of one run's dispatch/gather machinery.
struct Gather<'a> {
    cfg: &'a ClusterConfig,
    traffic: Arc<NetTraffic>,
    /// All `N·P` ranges as `(start, end)` pairs, by global index.
    ranges: Vec<(u64, u64)>,
    /// Exactly-once ledger: `completed[g]` is set when range `g`'s
    /// summary is committed, and checked before any commit.
    completed: Vec<bool>,
    slots: Vec<Slot>,
    listed: Option<Vec<(u32, u32, u32)>>,
    retries: u64,
    reassigned: u64,
    failed: Vec<usize>,
    /// Handles of failed dispatches, joined once every endpoint is
    /// dropped (joining earlier could block on a wedged node).
    reap: Vec<NodeHandle>,
    /// The master's own oriented copy, for the local fallback node.
    master_base: String,
}

impl Gather<'_> {
    fn heartbeat_ms(&self) -> u32 {
        self.cfg.heartbeat.as_millis().min(u32::MAX as u128) as u32
    }

    fn spawn_endpoint(&self, id: usize, local: bool) -> Result<(Box<dyn Transport>, NodeHandle)> {
        let kind = if local {
            TransportKind::InProc
        } else {
            self.cfg.transport
        };
        Ok(match kind {
            TransportKind::InProc => {
                let (master_end, node_end) = in_proc_pair(self.traffic.clone());
                let handle = std::thread::spawn(move || serve_node(&node_end));
                (Box::new(master_end) as Box<dyn Transport>, handle)
            }
            TransportKind::Tcp => {
                let node = crate::tcp::TcpNode::spawn(id, self.traffic.clone())?;
                let addr = node.addr.clone();
                let handle = std::thread::spawn(move || node.join());
                let master_end = TcpTransport::connect(&addr, self.traffic.clone())?;
                (Box::new(master_end), handle)
            }
        })
    }

    fn worker_configs(&self, assigned: &[usize], read_fault: Option<u64>) -> Vec<WorkerConfig> {
        assigned
            .iter()
            .map(|&g| {
                let (start, end) = self.ranges[g];
                WorkerConfig {
                    start,
                    end,
                    budget_edges: self.cfg.budget.edges as u64,
                    scan_pruning: self.cfg.mgt.scan_pruning,
                    backend: self.cfg.mgt.backend,
                    io_latency_us: self.cfg.mgt.io_latency.as_micros().min(u32::MAX as u128) as u32,
                    read_fault,
                    codec: self.cfg.mgt.codec,
                }
            })
            .collect()
    }

    /// One dispatch attempt: spawn a fresh node thread for slot `i`
    /// and send it `assigned`. Consumes fault charges when `faulted`.
    fn try_dispatch(
        &mut self,
        i: usize,
        assigned: Vec<usize>,
        faulted: bool,
        faults: &mut ResolvedFaults,
    ) -> Result<()> {
        let (id, local) = (self.slots[i].id, self.slots[i].local);
        self.slots[i].attempts += 1;
        let (fault, read_fault) = if faulted {
            faults.dispatch_faults(id)
        } else {
            (NodeFault::None, None)
        };
        let (endpoint, handle) = self.spawn_endpoint(id, local)?;
        let config = Message::Config {
            node: id as u32,
            graph_base: self.slots[i].base.clone(),
            workers: self.worker_configs(&assigned, read_fault),
            listing: self.cfg.listing,
            directives: NodeDirectives {
                heartbeat_ms: self.heartbeat_ms(),
                fault,
            },
        };
        if let Err(e) = endpoint.send(&config) {
            drop(endpoint);
            self.reap.push(handle);
            return Err(e);
        }
        self.slots[i].state = SlotState::Running(Live {
            endpoint,
            handle,
            assigned,
            faulted,
            triples: Vec::new(),
            last_heard: Instant::now(),
            started: Instant::now(),
        });
        Ok(())
    }

    /// Start slot `i` under the run's policy: a dispatch failure
    /// aborts under fail-fast and enters the retry machinery under
    /// tolerance.
    fn start(
        &mut self,
        i: usize,
        assigned: Vec<usize>,
        faulted: bool,
        faults: &mut ResolvedFaults,
    ) -> Result<()> {
        match self.try_dispatch(i, assigned.clone(), faulted, faults) {
            Ok(()) => Ok(()),
            Err(e) => match self.cfg.policy {
                FailurePolicy::FailFast => Err(e),
                FailurePolicy::Tolerant(rp) => {
                    self.slots[i].last_error = e.to_string();
                    self.respawn(i, assigned, faulted, &rp, faults);
                    Ok(())
                }
            },
        }
    }

    /// Retry slot `i`'s dispatch with backoff until it sticks or the
    /// attempt budget runs out; terminal failure marks the node dead
    /// and leaves its ranges for reassignment.
    fn respawn(
        &mut self,
        i: usize,
        assigned: Vec<usize>,
        faulted: bool,
        rp: &RetryPolicy,
        faults: &mut ResolvedFaults,
    ) {
        loop {
            if self.slots[i].attempts >= rp.max_attempts {
                self.failed.push(self.slots[i].id);
                self.slots[i].state = SlotState::Dead;
                return;
            }
            self.retries += 1;
            std::thread::sleep(rp.backoff(self.slots[i].id, self.slots[i].attempts));
            match self.try_dispatch(i, assigned.clone(), faulted, faults) {
                Ok(()) => return,
                Err(e) => self.slots[i].last_error = e.to_string(),
            }
        }
    }

    /// Record a failed dispatch of slot `i` and respawn it (tolerant
    /// mode): the endpoint is dropped (unblocking the node thread,
    /// which is reaped later), its buffered triangles are discarded,
    /// and the same ranges are re-dispatched.
    fn fail_tolerant(
        &mut self,
        i: usize,
        detail: String,
        rp: &RetryPolicy,
        faults: &mut ResolvedFaults,
    ) {
        let state = std::mem::replace(&mut self.slots[i].state, SlotState::Dead);
        let SlotState::Running(live) = state else {
            self.slots[i].state = state;
            return;
        };
        drop(live.endpoint);
        self.reap.push(live.handle);
        self.slots[i].last_error = detail;
        self.respawn(i, live.assigned, live.faulted, rp, faults);
    }

    /// Validate and commit a `Results` message from slot `i`. An `Err`
    /// carries the mismatch detail and leaves the slot running so the
    /// caller can fail it (the dispatch's ranges stay uncommitted).
    fn accept(
        &mut self,
        i: usize,
        from: u32,
        workers: Vec<WorkerSummary>,
    ) -> std::result::Result<(), String> {
        let state = std::mem::replace(&mut self.slots[i].state, SlotState::Dead);
        let mut live = match state {
            SlotState::Running(l) => l,
            other => {
                self.slots[i].state = other;
                return Err("Results from a node with no dispatch in flight".into());
            }
        };
        let check = || -> std::result::Result<(), String> {
            if from as usize != self.slots[i].id {
                return Err(format!(
                    "Results claim node {from}, slot is node {}",
                    self.slots[i].id
                ));
            }
            if workers.len() != live.assigned.len() {
                return Err(format!(
                    "{} summaries for {} assigned ranges",
                    workers.len(),
                    live.assigned.len()
                ));
            }
            for (s, &g) in workers.iter().zip(live.assigned.iter()) {
                let (start, end) = self.ranges[g];
                if s.start != start || s.end != end {
                    return Err(format!(
                        "summary for [{}, {}) does not match assigned range [{start}, {end})",
                        s.start, s.end
                    ));
                }
                if self.completed[g] {
                    return Err(format!("range [{start}, {end}) already counted"));
                }
            }
            Ok(())
        };
        if let Err(detail) = check() {
            live.triples.clear();
            self.slots[i].state = SlotState::Running(live);
            return Err(detail);
        }
        for &g in &live.assigned {
            self.completed[g] = true;
        }
        if let Some(list) = self.listed.as_mut() {
            list.append(&mut live.triples);
        } else {
            live.triples.clear();
        }
        let slot = &mut self.slots[i];
        slot.wall += live.started.elapsed();
        slot.summaries.extend(workers);
        live.assigned.clear();
        slot.state = SlotState::Done(live);
        Ok(())
    }

    /// The tolerant gather loop: poll every running slot with a short
    /// deadline, commit results, and route every failure — error
    /// reply, disconnect, or deadline silence — through retry.
    fn gather_tolerant(&mut self, rp: &RetryPolicy, faults: &mut ResolvedFaults) {
        while self
            .slots
            .iter()
            .any(|s| matches!(s.state, SlotState::Running(_)))
        {
            for i in 0..self.slots.len() {
                let event = match &mut self.slots[i].state {
                    SlotState::Running(live) => live.endpoint.recv_deadline(POLL),
                    _ => continue,
                };
                match event {
                    Ok(Message::Progress { .. }) => {
                        if let SlotState::Running(live) = &mut self.slots[i].state {
                            live.last_heard = Instant::now();
                        }
                    }
                    Ok(Message::Triangles { triples, .. }) => {
                        if let SlotState::Running(live) = &mut self.slots[i].state {
                            live.triples.extend(triples);
                            live.last_heard = Instant::now();
                        }
                    }
                    Ok(Message::Results { node, workers }) => {
                        if let Err(detail) = self.accept(i, node, workers) {
                            self.fail_tolerant(i, detail, rp, faults);
                        }
                    }
                    Ok(Message::NodeError { detail, .. }) => {
                        self.fail_tolerant(i, detail, rp, faults);
                    }
                    Ok(other) => {
                        self.fail_tolerant(
                            i,
                            format!("unexpected message from node: {other:?}"),
                            rp,
                            faults,
                        );
                    }
                    Err(ClusterError::Timeout { .. }) => {
                        let silent_too_long = self.cfg.heartbeat > Duration::ZERO
                            && matches!(
                                &self.slots[i].state,
                                SlotState::Running(live)
                                    if live.last_heard.elapsed() > self.cfg.node_deadline
                            );
                        if silent_too_long {
                            self.fail_tolerant(
                                i,
                                format!("no progress within {:?}", self.cfg.node_deadline),
                                rp,
                                faults,
                            );
                        }
                    }
                    Err(e) => self.fail_tolerant(i, e.to_string(), rp, faults),
                }
            }
        }
    }

    /// Re-dispatch `assigned` over slot `i`'s still-open connection
    /// (recovery: no fault charges are consumed).
    fn redispatch(
        &mut self,
        i: usize,
        assigned: Vec<usize>,
        rp: &RetryPolicy,
        faults: &mut ResolvedFaults,
    ) {
        let state = std::mem::replace(&mut self.slots[i].state, SlotState::Dead);
        let SlotState::Done(mut live) = state else {
            self.slots[i].state = state;
            return;
        };
        let config = Message::Config {
            node: self.slots[i].id as u32,
            graph_base: self.slots[i].base.clone(),
            workers: self.worker_configs(&assigned, None),
            listing: self.cfg.listing,
            directives: NodeDirectives {
                heartbeat_ms: self.heartbeat_ms(),
                fault: NodeFault::None,
            },
        };
        self.slots[i].attempts += 1;
        match live.endpoint.send(&config) {
            Ok(()) => {
                live.assigned = assigned;
                live.faulted = false;
                live.last_heard = Instant::now();
                live.started = Instant::now();
                self.slots[i].state = SlotState::Running(live);
            }
            Err(e) => {
                // The survivor's connection broke: retire it and let
                // the retry machinery respawn it from its replica.
                drop(live.endpoint);
                self.reap.push(live.handle);
                self.slots[i].last_error = e.to_string();
                self.respawn(i, assigned, false, rp, faults);
            }
        }
    }

    /// Reassign every uncompleted range until none remain: distribute
    /// orphans over surviving nodes, or — when no node survives — over
    /// a master-local in-process fallback.
    fn recover(&mut self, rp: &RetryPolicy, faults: &mut ResolvedFaults) -> Result<()> {
        let mut fallback_used = false;
        loop {
            let missing: Vec<usize> = (0..self.ranges.len())
                .filter(|&g| !self.completed[g])
                .collect();
            if missing.is_empty() {
                return Ok(());
            }
            let survivors: Vec<usize> = (0..self.slots.len())
                .filter(|&i| matches!(self.slots[i].state, SlotState::Done(_)))
                .collect();
            if survivors.is_empty() {
                if fallback_used {
                    let detail = self
                        .slots
                        .iter()
                        .rev()
                        .map(|s| s.last_error.clone())
                        .find(|e| !e.is_empty())
                        .unwrap_or_else(|| "no surviving node".into());
                    return Err(ClusterError::NodeFailed {
                        node: 0,
                        attempts: self.slots.iter().map(|s| s.attempts).sum(),
                        detail,
                    });
                }
                fallback_used = true;
                self.reassigned += missing.len() as u64;
                self.slots.push(Slot::new(
                    0,
                    self.master_base.clone(),
                    Duration::ZERO,
                    0,
                    true,
                ));
                let i = self.slots.len() - 1;
                self.slots[i].reassigned = missing.len() as u64;
                // Recovery dispatch: the fallback runs in the master's
                // own process, so the fault plan (which models remote
                // hosts failing) never applies to it.
                self.start(i, missing, false, faults)?;
            } else {
                let mut groups: Vec<Vec<usize>> = vec![Vec::new(); survivors.len()];
                for (k, g) in missing.into_iter().enumerate() {
                    groups[k % survivors.len()].push(g);
                }
                for (&i, group) in survivors.iter().zip(groups) {
                    if group.is_empty() {
                        continue;
                    }
                    self.reassigned += group.len() as u64;
                    self.slots[i].reassigned += group.len() as u64;
                    self.redispatch(i, group, rp, faults);
                }
            }
            self.gather_tolerant(rp, faults);
        }
    }

    /// Shut every surviving node down and join all node threads. Safe
    /// only once no dispatch is in flight: endpoints are dropped
    /// first, so even wedged or panicked threads unblock and exit.
    fn finish(&mut self) {
        for slot in &mut self.slots {
            let state = std::mem::replace(&mut slot.state, SlotState::Dead);
            if let SlotState::Done(live) | SlotState::Running(live) = state {
                let _ = live.endpoint.send(&Message::Shutdown);
                drop(live.endpoint);
                self.reap.push(live.handle);
            }
        }
        for handle in self.reap.drain(..) {
            // Failures were already accounted when they happened; a
            // panic payload here belongs to a node we gave up on.
            let _ = handle.join();
        }
    }

    /// The fail-fast gather: sequentially drain each node, aborting
    /// the whole run on the first failure with the original error.
    fn gather_fail_fast(&mut self) -> Result<()> {
        for i in 0..self.slots.len() {
            loop {
                let event = match &mut self.slots[i].state {
                    SlotState::Running(live) => live.endpoint.recv(),
                    SlotState::Done(_) => break,
                    SlotState::Dead => {
                        return Err(ClusterError::NodeFailed {
                            node: self.slots[i].id,
                            attempts: self.slots[i].attempts,
                            detail: self.slots[i].last_error.clone(),
                        })
                    }
                };
                match event {
                    Ok(Message::Progress { .. }) => {}
                    Ok(Message::Triangles { triples, .. }) => {
                        if let SlotState::Running(live) = &mut self.slots[i].state {
                            live.triples.extend(triples);
                        }
                    }
                    Ok(Message::Results { node, workers }) => {
                        self.accept(i, node, workers)
                            .map_err(ClusterError::Protocol)?;
                    }
                    Ok(Message::NodeError { node, detail }) => {
                        return Err(ClusterError::NodeFailed {
                            node: node as usize,
                            attempts: self.slots[i].attempts,
                            detail,
                        });
                    }
                    Ok(other) => {
                        return Err(ClusterError::Protocol(format!(
                            "unexpected message from node: {other:?}"
                        )));
                    }
                    Err(e) => return Err(self.surface_death(i, e)),
                }
            }
            // Retire this node before draining the next: shut it down
            // and surface any panic, exactly like the pre-tolerance
            // gather did.
            let state = std::mem::replace(&mut self.slots[i].state, SlotState::Dead);
            if let SlotState::Done(live) = state {
                let _ = live.endpoint.send(&Message::Shutdown);
                drop(live.endpoint);
                live.handle
                    .join()
                    .map_err(|payload| ClusterError::node_panic(self.slots[i].id, payload))??;
            }
        }
        Ok(())
    }

    /// A transport error ended slot `i`'s dispatch under fail-fast:
    /// reap the node thread to surface the underlying panic or error,
    /// falling back to the transport error itself.
    fn surface_death(&mut self, i: usize, original: ClusterError) -> ClusterError {
        let state = std::mem::replace(&mut self.slots[i].state, SlotState::Dead);
        let SlotState::Running(live) = state else {
            self.slots[i].state = state;
            return original;
        };
        drop(live.endpoint);
        match live.handle.join() {
            Err(payload) => ClusterError::node_panic(self.slots[i].id, payload),
            Ok(Err(e)) => e,
            Ok(Ok(())) => original,
        }
    }
}

/// The distributed PDTL runner (master side).
#[derive(Debug, Clone)]
pub struct ClusterRunner {
    config: ClusterConfig,
}

impl ClusterRunner {
    /// Build a runner, validating the configuration.
    pub fn new(config: ClusterConfig) -> Result<Self> {
        if config.nodes == 0 {
            return Err(ClusterError::Config("nodes must be >= 1".into()));
        }
        if config.cores_per_node == 0 {
            return Err(ClusterError::Config("cores_per_node must be >= 1".into()));
        }
        if let FailurePolicy::Tolerant(rp) = config.policy {
            if rp.max_attempts == 0 {
                return Err(ClusterError::Config("max_attempts must be >= 1".into()));
            }
        }
        Ok(Self { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Run the full distributed protocol on the undirected PDTL-format
    /// graph at `input`, using `work_dir` for the oriented graph and the
    /// per-node replicas.
    pub fn run(&self, input: &DiskGraph, work_dir: &Path) -> Result<ClusterReport> {
        let cfg = &self.config;
        std::fs::create_dir_all(work_dir)
            .map_err(|e| pdtl_io::IoError::os("mkdir", work_dir, e))?;
        // Full-digest the input against its integrity manifest before
        // orienting or replicating anything: corruption must surface as
        // a typed error here, never as a wrong count downstream.
        input.verify_full()?;
        let wall_start = Instant::now();
        let master_stats = IoStats::new();
        let traffic = NetTraffic::new();

        // 1. Orientation, once, on the master's cores.
        let oriented_base = work_dir.join("oriented");
        let (og, orientation) = orient_to_disk_with(
            input,
            &oriented_base,
            cfg.cores_per_node,
            cfg.mgt.codec,
            &master_stats,
        )?;

        // 2. N*P contiguous ranges.
        let in_degrees = og.in_degrees().ok_or_else(|| {
            ClusterError::Protocol("oriented graph is missing its original-degree records".into())
        })?;
        let total_workers = cfg.nodes * cfg.cores_per_node;
        let (ranges, balancing) =
            split_ranges(&og.offsets, &in_degrees, total_workers, cfg.balance);

        let mut faults = cfg.fault.resolve(cfg.nodes);
        let mut g = Gather {
            cfg,
            traffic: traffic.clone(),
            ranges: ranges.iter().map(|r| (r.start, r.end)).collect(),
            completed: vec![false; ranges.len()],
            slots: Vec::with_capacity(cfg.nodes),
            listed: cfg.listing.then(Vec::new),
            retries: 0,
            reassigned: 0,
            failed: Vec::new(),
            reap: Vec::new(),
            master_base: oriented_base.to_string_lossy().into_owned(),
        };

        // 3. Master's node starts immediately on the original oriented
        //    copy; remote nodes start as their replicas land ("the
        //    nodes start calculating as soon as they receive the
        //    files"). Replica copies are themselves retried under the
        //    tolerant policy.
        g.slots.push(Slot::new(
            0,
            g.master_base.clone(),
            Duration::ZERO,
            0,
            false,
        ));
        g.start(0, (0..cfg.cores_per_node).collect(), true, &mut faults)?;

        for id in 1..cfg.nodes {
            let node_base = work_dir.join(format!("node{id}")).join("oriented");
            let mut copied = None;
            let mut copy_attempts = 0u32;
            let mut copy_error = String::new();
            loop {
                copy_attempts += 1;
                let copy_start = Instant::now();
                let outcome: Result<u64> = if faults.copy_fail(id) {
                    Err(pdtl_io::IoError::malformed(
                        "<fault-injected>",
                        format!("injected replica copy failure for node {id}"),
                    )
                    .into())
                } else {
                    og.replicate_to(&node_base, &master_stats)
                        .map_err(ClusterError::from)
                        .and_then(|bytes| {
                            if let Some(target) = faults.corrupt_replica(id) {
                                // Injected silent media corruption on the
                                // landed replica, seeded per (node,
                                // attempt) so CI legs are reproducible.
                                DiskFaultSpec {
                                    kind: DiskFaultKind::BitFlip,
                                    target,
                                    seed: 0x5D15_C0DE
                                        ^ ((id as u64) << 8)
                                        ^ u64::from(copy_attempts),
                                }
                                .apply(&node_base)?;
                            }
                            // Digest the replica against the manifest it
                            // shipped with; a mismatch is a copy failure
                            // and re-enters the retry loop below, which
                            // re-copies from the healthy master original
                            // (self-healing).
                            verify_replica(&node_base)?;
                            Ok(bytes)
                        })
                };
                match outcome {
                    Ok(bytes) => {
                        copied = Some((copy_start.elapsed(), bytes));
                        break;
                    }
                    Err(e) => match cfg.policy {
                        FailurePolicy::FailFast => return Err(e),
                        FailurePolicy::Tolerant(rp) if copy_attempts < rp.max_attempts => {
                            copy_error = e.to_string();
                            g.retries += 1;
                            std::thread::sleep(rp.backoff(id, copy_attempts));
                        }
                        FailurePolicy::Tolerant(_) => {
                            copy_error = e.to_string();
                            break;
                        }
                    },
                }
            }
            let base = node_base.to_string_lossy().into_owned();
            match copied {
                Some((copy, bytes)) => {
                    traffic.add_graph(bytes);
                    g.slots.push(Slot::new(id, base, copy, bytes, false));
                    let i = g.slots.len() - 1;
                    let assigned =
                        (id * cfg.cores_per_node..(id + 1) * cfg.cores_per_node).collect();
                    g.start(i, assigned, true, &mut faults)?;
                }
                None => {
                    // The node never got a replica: record the failure
                    // and leave its ranges for reassignment.
                    let mut slot = Slot::new(id, base, Duration::ZERO, 0, false);
                    slot.attempts = copy_attempts;
                    slot.last_error = copy_error;
                    g.slots.push(slot);
                    g.failed.push(id);
                }
            }
        }

        // 4. Gather, with failure handling per the policy.
        match cfg.policy {
            FailurePolicy::FailFast => g.gather_fail_fast()?,
            FailurePolicy::Tolerant(rp) => {
                g.gather_tolerant(&rp, &mut faults);
                g.recover(&rp, &mut faults)?;
                g.finish();
            }
        }
        debug_assert!(g.completed.iter().all(|&c| c), "every range accounted");

        // 5. Fold slot accounts into per-node reports (a node id can
        //    own several slots after the master-local fallback).
        let mut nodes: Vec<NodeReport> = Vec::new();
        for slot in &g.slots {
            if slot.summaries.is_empty() {
                continue;
            }
            if let Some(existing) = nodes.iter_mut().find(|n| n.node == slot.id) {
                existing.workers.extend(slot.summaries.iter().cloned());
                existing.wall += slot.wall;
                existing.reassigned_ranges += slot.reassigned;
            } else {
                nodes.push(NodeReport {
                    node: slot.id,
                    copy: slot.copy,
                    copy_bytes: slot.copy_bytes,
                    workers: slot.summaries.clone(),
                    wall: slot.wall,
                    reassigned_ranges: slot.reassigned,
                });
            }
        }
        nodes.sort_by_key(|n| n.node);
        let mut failed_nodes = g.failed.clone();
        failed_nodes.sort_unstable();
        failed_nodes.dedup();

        let triangles = nodes.iter().map(|n| n.triangles()).sum();
        Ok(ClusterReport {
            triangles,
            orientation,
            balancing,
            nodes,
            network: NetSnapshot {
                config: traffic.config_bytes(),
                graph: traffic.graph_bytes(),
                result: traffic.result_bytes(),
                triangles: traffic.triangle_bytes(),
                control: traffic.control_bytes(),
            },
            wall: wall_start.elapsed(),
            listed: g.listed,
            retries: g.retries,
            reassigned_ranges: g.reassigned,
            failed_nodes,
        })
    }
}

/// Full-digest a freshly landed replica against the manifest it
/// shipped with. A replica without a manifest (copied from a
/// pre-integrity base) is accepted as-is; any digest or length
/// mismatch is a typed error the copy loop treats as a failed copy.
fn verify_replica(base: &Path) -> Result<()> {
    if let Some(m) = Manifest::load(base)? {
        m.verify_full(base)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdtl_core::theory;
    use pdtl_graph::gen::rmat::rmat;
    use pdtl_graph::verify::triangle_count;
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("pdtl-cluster-tests")
            .join(format!("{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn write_input(tag: &str, seed: u64) -> (DiskGraph, u64, u64, u32) {
        let g = rmat(7, seed).unwrap();
        let stats = IoStats::new();
        let dg = DiskGraph::write(&g, tmpdir(tag).join("g"), &stats).unwrap();
        (dg, triangle_count(&g), g.num_edges(), g.num_vertices())
    }

    fn cfg(nodes: usize, cores: usize) -> ClusterConfig {
        ClusterConfig {
            nodes,
            cores_per_node: cores,
            budget: MemoryBudget::edges(512),
            balance: BalanceStrategy::InDegree,
            listing: false,
            net: NetModel::default(),
            transport: TransportKind::default(),
            mgt: Default::default(),
            policy: FailurePolicy::default(),
            heartbeat: Duration::from_millis(25),
            node_deadline: Duration::from_secs(5),
            fault: FaultPlan::none(),
        }
    }

    #[test]
    fn counts_match_oracle_across_cluster_shapes() {
        let (input, expected, _, _) = write_input("shapes", 51);
        for (nodes, cores) in [(1, 1), (1, 4), (2, 2), (3, 1), (4, 2)] {
            let runner = ClusterRunner::new(cfg(nodes, cores)).unwrap();
            let report = runner
                .run(&input, &tmpdir(&format!("shapes-{nodes}x{cores}")))
                .unwrap();
            assert_eq!(report.triangles, expected, "{nodes}x{cores}");
            assert_eq!(report.nodes.len(), nodes);
            assert_eq!(report.node_triangle_sum(), expected);
            assert!(report.nodes.iter().all(|n| n.workers.len() == cores));
            assert_eq!(report.retries, 0);
            assert_eq!(report.reassigned_ranges, 0);
            assert!(report.failed_nodes.is_empty());
        }
    }

    #[test]
    fn replication_traffic_matches_graph_size() {
        let (input, _, _, _) = write_input("traffic", 52);
        let runner = ClusterRunner::new(cfg(3, 2)).unwrap();
        let report = runner.run(&input, &tmpdir("traffic-run")).unwrap();
        // graph copied to N-1 = 2 remote nodes
        let oriented_bytes: u64 = report.nodes[1].copy_bytes;
        assert!(oriented_bytes > 0);
        assert_eq!(report.network.graph, 2 * oriented_bytes);
        assert!(report.network.config > 0);
        assert!(report.network.result > 0);
        assert_eq!(report.network.triangles, 0, "no listing traffic");
        // the tolerant runner shuts nodes down over the control plane
        assert!(report.network.control > 0);
    }

    #[test]
    fn network_within_theorem_iv3_bound() {
        let (input, t, m, _) = write_input("bound", 53);
        let (nodes, cores) = (4usize, 2usize);
        let runner = ClusterRunner::new(cfg(nodes, cores)).unwrap();
        let report = runner.run(&input, &tmpdir("bound-run")).unwrap();
        let bound = theory::pdtl_network_bound_bytes(nodes as u64, cores as u64, m, 0);
        // The theorem bounds config + graph + result + triangle bytes;
        // control-plane liveness traffic scales with wall time, not
        // with N, P or T, and is excluded.
        assert!(
            report.network.theorem_bytes() <= 4 * bound,
            "traffic {} exceeds 4x bound {}",
            report.network.theorem_bytes(),
            bound
        );
        let _ = t;
    }

    #[test]
    fn listing_collects_every_triangle_with_traffic() {
        let (input, expected, _, _) = write_input("listing", 54);
        let mut c = cfg(2, 2);
        c.listing = true;
        let runner = ClusterRunner::new(c).unwrap();
        let report = runner.run(&input, &tmpdir("listing-run")).unwrap();
        let listed = report.listed.as_ref().unwrap();
        assert_eq!(listed.len() as u64, expected);
        assert!(report.network.triangles >= expected * 12);
        // no duplicates across the cluster
        let mut canon: Vec<_> = listed
            .iter()
            .map(|&(a, b, c)| {
                let mut t = [a, b, c];
                t.sort_unstable();
                t
            })
            .collect();
        canon.sort_unstable();
        canon.dedup();
        assert_eq!(canon.len() as u64, expected);
    }

    #[test]
    fn remote_nodes_record_copy_times() {
        let (input, _, _, _) = write_input("copy", 55);
        let runner = ClusterRunner::new(cfg(3, 1)).unwrap();
        let report = runner.run(&input, &tmpdir("copy-run")).unwrap();
        assert_eq!(report.nodes[0].copy_bytes, 0, "master owns the original");
        assert!(report.nodes[1].copy_bytes > 0);
        assert!(report.nodes[2].copy_bytes > 0);
        assert!(report.avg_copy() > Duration::ZERO);
        assert!(report.modeled_avg_copy(&NetModel::default()) > 0.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(ClusterRunner::new(cfg(0, 1)).is_err());
        assert!(ClusterRunner::new(cfg(1, 0)).is_err());
        let mut zero_attempts = cfg(2, 1);
        zero_attempts.policy = FailurePolicy::Tolerant(RetryPolicy {
            max_attempts: 0,
            ..Default::default()
        });
        assert!(ClusterRunner::new(zero_attempts).is_err());
    }

    #[test]
    fn tcp_transport_full_protocol() {
        let (input, expected, _, _) = write_input("tcp", 57);
        let mut c = cfg(3, 2);
        c.transport = TransportKind::Tcp;
        let report = ClusterRunner::new(c)
            .unwrap()
            .run(&input, &tmpdir("tcp-run"))
            .unwrap();
        assert_eq!(report.triangles, expected);
        // TCP frames include 4-byte headers, so traffic is strictly
        // larger than the in-proc encoding but still within the bound.
        assert!(report.network.config > 0);
    }

    #[test]
    fn equal_edges_strategy_also_correct() {
        let (input, expected, _, _) = write_input("naive", 56);
        let mut c = cfg(2, 3);
        c.balance = BalanceStrategy::EqualEdges;
        let report = ClusterRunner::new(c)
            .unwrap()
            .run(&input, &tmpdir("naive-run"))
            .unwrap();
        assert_eq!(report.triangles, expected);
    }

    #[test]
    fn fail_fast_still_exact_without_faults() {
        let (input, expected, _, _) = write_input("failfast", 58);
        let mut c = cfg(2, 2);
        c.policy = FailurePolicy::FailFast;
        let report = ClusterRunner::new(c)
            .unwrap()
            .run(&input, &tmpdir("failfast-run"))
            .unwrap();
        assert_eq!(report.triangles, expected);
        assert_eq!(report.retries, 0);
        assert!(report.failed_nodes.is_empty());
    }

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let rp = RetryPolicy::default();
        assert_eq!(rp.backoff(1, 1), rp.backoff(1, 1));
        assert!(rp.backoff(1, 4) > rp.backoff(1, 1));
        // jitter differs across nodes at the same attempt, at least
        // somewhere in a small sweep
        assert!((0..8).any(|n| rp.backoff(n, 1) != rp.backoff(n + 8, 1)));
    }
}
