//! Error type for the distributed runtime.

use std::fmt;

/// Result alias for cluster operations.
pub type Result<T> = std::result::Result<T, ClusterError>;

/// Errors raised by the distributed runtime.
#[derive(Debug)]
pub enum ClusterError {
    /// Underlying core failure (orientation, MGT, balancing).
    Core(pdtl_core::CoreError),
    /// Underlying I/O substrate failure.
    Io(pdtl_io::IoError),
    /// A malformed or unexpected protocol message.
    Protocol(String),
    /// A transport endpoint disconnected.
    Disconnected(&'static str),
    /// An invalid cluster configuration.
    Config(String),
    /// A node task panicked; `detail` carries the panic payload when it
    /// was a string (the common `panic!("...")` case).
    NodePanic {
        /// Cluster id of the node whose thread panicked.
        node: usize,
        /// Stringified panic payload, or a placeholder for non-string
        /// payloads.
        detail: String,
    },
    /// Nothing arrived on a transport within the deadline.
    Timeout {
        /// Which peer the receive was waiting on.
        peer: &'static str,
        /// The deadline that expired.
        after: std::time::Duration,
    },
    /// A serve-mode query was answered with a typed rejection; the
    /// daemon is healthy and keeps serving.
    Query {
        /// The request id the rejection echoes.
        id: u32,
        /// The server's failure description.
        detail: String,
    },
    /// A node was given up on after exhausting its retry budget.
    NodeFailed {
        /// Cluster id of the failed node.
        node: usize,
        /// Dispatch attempts made before giving up.
        attempts: u32,
        /// The last failure observed from the node.
        detail: String,
    },
}

impl ClusterError {
    /// Build a [`ClusterError::NodePanic`], extracting the panic
    /// message from a `std::thread::JoinHandle::join` error payload.
    pub fn node_panic(node: usize, payload: Box<dyn std::any::Any + Send>) -> Self {
        let detail = payload
            .downcast_ref::<&'static str>()
            .map(|s| s.to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        ClusterError::NodePanic { node, detail }
    }
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Core(e) => write!(f, "core: {e}"),
            ClusterError::Io(e) => write!(f, "io: {e}"),
            ClusterError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ClusterError::Disconnected(who) => write!(f, "transport disconnected: {who}"),
            ClusterError::Config(msg) => write!(f, "configuration: {msg}"),
            ClusterError::NodePanic { node, detail } => {
                write!(f, "node {node} panicked: {detail}")
            }
            ClusterError::Timeout { peer, after } => {
                write!(f, "timed out waiting on {peer} after {after:?}")
            }
            ClusterError::Query { id, detail } => {
                write!(f, "query {id} rejected: {detail}")
            }
            ClusterError::NodeFailed {
                node,
                attempts,
                detail,
            } => {
                write!(
                    f,
                    "node {node} failed after {attempts} attempt(s): {detail}"
                )
            }
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Core(e) => Some(e),
            ClusterError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pdtl_core::CoreError> for ClusterError {
    fn from(e: pdtl_core::CoreError) -> Self {
        ClusterError::Core(e)
    }
}

impl From<pdtl_io::IoError> for ClusterError {
    fn from(e: pdtl_io::IoError) -> Self {
        ClusterError::Io(e)
    }
}

impl From<pdtl_graph::GraphError> for ClusterError {
    fn from(e: pdtl_graph::GraphError) -> Self {
        ClusterError::Core(pdtl_core::CoreError::Graph(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_all_variants() {
        assert!(ClusterError::Protocol("bad tag".into())
            .to_string()
            .contains("bad tag"));
        assert!(ClusterError::Disconnected("node 3")
            .to_string()
            .contains("node 3"));
        let p = ClusterError::NodePanic {
            node: 2,
            detail: "boom".into(),
        };
        assert!(p.to_string().contains("node 2"));
        assert!(p.to_string().contains("boom"));
        let t = ClusterError::Timeout {
            peer: "tcp peer",
            after: std::time::Duration::from_millis(250),
        };
        assert!(t.to_string().contains("tcp peer"));
        let n = ClusterError::NodeFailed {
            node: 1,
            attempts: 3,
            detail: "disconnected".into(),
        };
        assert!(n.to_string().contains("3 attempt"));
        let e: ClusterError = pdtl_io::IoError::malformed("/x", "y").into();
        assert!(e.to_string().contains("io:"));
    }

    #[test]
    fn node_panic_extracts_string_payloads() {
        let join_err = std::thread::spawn(|| panic!("worker exploded"))
            .join()
            .unwrap_err();
        match ClusterError::node_panic(7, join_err) {
            ClusterError::NodePanic { node, detail } => {
                assert_eq!(node, 7);
                assert!(detail.contains("worker exploded"), "{detail}");
            }
            other => panic!("wrong variant: {other}"),
        }
    }
}
