//! Error type for the distributed runtime.

use std::fmt;

/// Result alias for cluster operations.
pub type Result<T> = std::result::Result<T, ClusterError>;

/// Errors raised by the distributed runtime.
#[derive(Debug)]
pub enum ClusterError {
    /// Underlying core failure (orientation, MGT, balancing).
    Core(pdtl_core::CoreError),
    /// Underlying I/O substrate failure.
    Io(pdtl_io::IoError),
    /// A malformed or unexpected protocol message.
    Protocol(String),
    /// A transport endpoint disconnected.
    Disconnected(&'static str),
    /// An invalid cluster configuration.
    Config(String),
    /// A node task panicked.
    NodePanic(usize),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Core(e) => write!(f, "core: {e}"),
            ClusterError::Io(e) => write!(f, "io: {e}"),
            ClusterError::Protocol(msg) => write!(f, "protocol: {msg}"),
            ClusterError::Disconnected(who) => write!(f, "transport disconnected: {who}"),
            ClusterError::Config(msg) => write!(f, "configuration: {msg}"),
            ClusterError::NodePanic(id) => write!(f, "node {id} panicked"),
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Core(e) => Some(e),
            ClusterError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pdtl_core::CoreError> for ClusterError {
    fn from(e: pdtl_core::CoreError) -> Self {
        ClusterError::Core(e)
    }
}

impl From<pdtl_io::IoError> for ClusterError {
    fn from(e: pdtl_io::IoError) -> Self {
        ClusterError::Io(e)
    }
}

impl From<pdtl_graph::GraphError> for ClusterError {
    fn from(e: pdtl_graph::GraphError) -> Self {
        ClusterError::Core(pdtl_core::CoreError::Graph(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_all_variants() {
        assert!(ClusterError::Protocol("bad tag".into())
            .to_string()
            .contains("bad tag"));
        assert!(ClusterError::Disconnected("node 3")
            .to_string()
            .contains("node 3"));
        assert!(ClusterError::NodePanic(2).to_string().contains('2'));
        let e: ClusterError = pdtl_io::IoError::malformed("/x", "y").into();
        assert!(e.to_string().contains("io:"));
    }
}
