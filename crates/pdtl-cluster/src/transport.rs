//! Counted message transports.
//!
//! The runner talks to nodes through the [`Transport`] trait so the same
//! protocol runs over an in-process channel (the default simulated
//! cluster — deterministic and dependency-free) or a real TCP socket
//! (loopback or an actual network). Every sent message is charged to the
//! shared [`NetTraffic`] counters by traffic class.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use crate::error::{ClusterError, Result};
use crate::message::Message;
use crate::netmodel::NetTraffic;

/// A bidirectional, message-oriented endpoint.
pub trait Transport: Send {
    /// Send one message (counted).
    fn send(&self, msg: &Message) -> Result<()>;
    /// Receive the next message (blocking).
    fn recv(&self) -> Result<Message>;
}

fn charge(traffic: &NetTraffic, msg: &Message, bytes: u64) {
    match msg {
        Message::Config { .. } => traffic.add_config(bytes),
        Message::Results { .. } | Message::NodeError { .. } => traffic.add_result(bytes),
        Message::Triangles { .. } => traffic.add_triangles(bytes),
    }
}

/// In-process transport endpoint over crossbeam channels.
pub struct InProcTransport {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    traffic: Arc<NetTraffic>,
}

/// Create a connected pair of in-process endpoints sharing `traffic`.
pub fn in_proc_pair(traffic: Arc<NetTraffic>) -> (InProcTransport, InProcTransport) {
    let (atx, brx) = unbounded();
    let (btx, arx) = unbounded();
    (
        InProcTransport {
            tx: atx,
            rx: arx,
            traffic: traffic.clone(),
        },
        InProcTransport {
            tx: btx,
            rx: brx,
            traffic,
        },
    )
}

impl Transport for InProcTransport {
    fn send(&self, msg: &Message) -> Result<()> {
        let encoded = msg.encode();
        charge(&self.traffic, msg, encoded.len() as u64);
        self.tx
            .send(encoded)
            .map_err(|_| ClusterError::Disconnected("in-proc peer"))
    }

    fn recv(&self) -> Result<Message> {
        let raw = self
            .rx
            .recv()
            .map_err(|_| ClusterError::Disconnected("in-proc peer"))?;
        Message::decode(raw)
    }
}

/// TCP transport endpoint with length-prefixed frames.
pub struct TcpTransport {
    reader: Mutex<TcpStream>,
    writer: Mutex<TcpStream>,
    traffic: Arc<NetTraffic>,
}

impl TcpTransport {
    /// Wrap an established stream.
    pub fn from_stream(stream: TcpStream, traffic: Arc<NetTraffic>) -> Result<Self> {
        let reader = stream
            .try_clone()
            .map_err(|e| ClusterError::Io(pdtl_io::IoError::os("clone", "tcp", e)))?;
        Ok(Self {
            reader: Mutex::new(reader),
            writer: Mutex::new(stream),
            traffic,
        })
    }

    /// Connect to `addr`.
    pub fn connect(addr: &str, traffic: Arc<NetTraffic>) -> Result<Self> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ClusterError::Io(pdtl_io::IoError::os("connect", addr, e)))?;
        Self::from_stream(stream, traffic)
    }
}

impl Transport for TcpTransport {
    fn send(&self, msg: &Message) -> Result<()> {
        let encoded = msg.encode();
        // frame header + payload both cross the wire
        charge(&self.traffic, msg, encoded.len() as u64 + 4);
        let mut w = self.writer.lock();
        w.write_all(&(encoded.len() as u32).to_le_bytes())
            .and_then(|_| w.write_all(&encoded))
            .map_err(|e| ClusterError::Io(pdtl_io::IoError::os("send", "tcp", e)))
    }

    fn recv(&self) -> Result<Message> {
        let mut r = self.reader.lock();
        let mut header = [0u8; 4];
        r.read_exact(&mut header)
            .map_err(|_| ClusterError::Disconnected("tcp peer"))?;
        let len = u32::from_le_bytes(header) as usize;
        let mut payload = vec![0u8; len];
        r.read_exact(&mut payload)
            .map_err(|_| ClusterError::Disconnected("tcp peer"))?;
        Message::decode(Bytes::from(payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::WorkerConfig;

    fn config_msg() -> Message {
        Message::Config {
            node: 1,
            graph_base: "/tmp/g".into(),
            workers: vec![WorkerConfig {
                start: 0,
                end: 10,
                budget_edges: 5,
                scan_pruning: true,
                backend: pdtl_io::IoBackend::default(),
                io_latency_us: 0,
            }],
            listing: false,
        }
    }

    #[test]
    fn in_proc_round_trip_and_accounting() {
        let traffic = NetTraffic::new();
        let (a, b) = in_proc_pair(traffic.clone());
        let msg = config_msg();
        a.send(&msg).unwrap();
        assert_eq!(b.recv().unwrap(), msg);
        assert_eq!(traffic.config_bytes(), msg.wire_size());

        let reply = Message::Results {
            node: 1,
            workers: vec![],
        };
        b.send(&reply).unwrap();
        assert_eq!(a.recv().unwrap(), reply);
        assert_eq!(traffic.result_bytes(), reply.wire_size());
    }

    #[test]
    fn in_proc_disconnect_reported() {
        let traffic = NetTraffic::new();
        let (a, b) = in_proc_pair(traffic);
        drop(b);
        assert!(matches!(
            a.send(&config_msg()),
            Err(ClusterError::Disconnected(_))
        ));
        assert!(matches!(a.recv(), Err(ClusterError::Disconnected(_))));
    }

    #[test]
    fn triangle_traffic_classified() {
        let traffic = NetTraffic::new();
        let (a, b) = in_proc_pair(traffic.clone());
        let msg = Message::Triangles {
            node: 0,
            triples: vec![(1, 2, 3); 10],
        };
        a.send(&msg).unwrap();
        b.recv().unwrap();
        assert_eq!(traffic.triangle_bytes(), msg.wire_size());
        assert_eq!(traffic.config_bytes(), 0);
    }

    #[test]
    fn tcp_round_trip_over_loopback() {
        let traffic = NetTraffic::new();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let t2 = traffic.clone();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let t = TcpTransport::from_stream(stream, t2).unwrap();
            let msg = t.recv().unwrap();
            t.send(&msg).unwrap(); // echo
        });
        let client = TcpTransport::connect(&addr, traffic.clone()).unwrap();
        let msg = config_msg();
        client.send(&msg).unwrap();
        assert_eq!(client.recv().unwrap(), msg);
        server.join().unwrap();
        // both directions counted, with 4-byte frame headers
        assert_eq!(traffic.config_bytes(), 2 * (msg.wire_size() + 4));
    }
}
