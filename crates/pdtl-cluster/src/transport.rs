//! Counted message transports.
//!
//! The runner talks to nodes through the [`Transport`] trait so the same
//! protocol runs over an in-process channel (the default simulated
//! cluster — deterministic and dependency-free) or a real TCP socket
//! (loopback or an actual network). Every sent message is charged to the
//! shared [`NetTraffic`] counters by traffic class.
//!
//! Receives come in two flavours: blocking [`recv`](Transport::recv)
//! and deadline-bounded [`recv_deadline`](Transport::recv_deadline),
//! which the fault-tolerant runner polls so a dead or wedged node
//! surfaces as [`ClusterError::Timeout`] instead of hanging the master
//! forever. The TCP implementation buffers partial frames across
//! timed-out reads, so a deadline expiring mid-frame never corrupts the
//! stream.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use crate::error::{ClusterError, Result};
use crate::message::Message;
use crate::netmodel::NetTraffic;

/// A bidirectional, message-oriented endpoint.
pub trait Transport: Send + Sync {
    /// Send one message (counted).
    fn send(&self, msg: &Message) -> Result<()>;
    /// Receive the next message (blocking).
    fn recv(&self) -> Result<Message>;
    /// Receive the next message, waiting at most `timeout`; returns
    /// [`ClusterError::Timeout`] when nothing (complete) arrived in
    /// time. Partial data read before the deadline is retained for the
    /// next call.
    fn recv_deadline(&self, timeout: Duration) -> Result<Message>;
}

fn charge(traffic: &NetTraffic, msg: &Message, bytes: u64) {
    match msg {
        // Serve-mode queries are the configuration of a dispatch, and
        // their answers are results — the same Θ-classes as the cluster
        // protocol, so stats stay comparable across both modes.
        Message::Config { .. } | Message::Query { .. } => traffic.add_config(bytes),
        Message::Results { .. }
        | Message::NodeError { .. }
        | Message::QueryResult { .. }
        | Message::QueryError { .. } => traffic.add_result(bytes),
        Message::Triangles { .. } => traffic.add_triangles(bytes),
        Message::Progress { .. }
        | Message::Shutdown
        | Message::StatsRequest
        | Message::StatsResult { .. } => traffic.add_control(bytes),
    }
}

/// In-process transport endpoint over crossbeam channels.
pub struct InProcTransport {
    tx: Sender<Bytes>,
    rx: Receiver<Bytes>,
    traffic: Arc<NetTraffic>,
}

/// Create a connected pair of in-process endpoints sharing `traffic`.
pub fn in_proc_pair(traffic: Arc<NetTraffic>) -> (InProcTransport, InProcTransport) {
    let (atx, brx) = unbounded();
    let (btx, arx) = unbounded();
    (
        InProcTransport {
            tx: atx,
            rx: arx,
            traffic: traffic.clone(),
        },
        InProcTransport {
            tx: btx,
            rx: brx,
            traffic,
        },
    )
}

impl Transport for InProcTransport {
    fn send(&self, msg: &Message) -> Result<()> {
        let encoded = msg.encode();
        charge(&self.traffic, msg, encoded.len() as u64);
        self.tx
            .send(encoded)
            .map_err(|_| ClusterError::Disconnected("in-proc peer"))
    }

    fn recv(&self) -> Result<Message> {
        let raw = self
            .rx
            .recv()
            .map_err(|_| ClusterError::Disconnected("in-proc peer"))?;
        Message::decode(raw)
    }

    fn recv_deadline(&self, timeout: Duration) -> Result<Message> {
        let raw = self.rx.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => ClusterError::Timeout {
                peer: "in-proc peer",
                after: timeout,
            },
            RecvTimeoutError::Disconnected => ClusterError::Disconnected("in-proc peer"),
        })?;
        Message::decode(raw)
    }
}

/// Reader half of a [`TcpTransport`]: the stream plus an accumulation
/// buffer so a deadline can expire mid-frame without losing the bytes
/// already read.
struct FrameReader {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl FrameReader {
    /// Extract one complete `[u32 len | payload]` frame from the front
    /// of the buffer, if present.
    fn take_frame(&mut self) -> Option<Bytes> {
        if self.buf.len() < 4 {
            return None;
        }
        let len = u32::from_le_bytes([self.buf[0], self.buf[1], self.buf[2], self.buf[3]]) as usize;
        if self.buf.len() < 4 + len {
            return None;
        }
        let payload = Bytes::from(&self.buf[4..4 + len]);
        self.buf.drain(..4 + len);
        Some(payload)
    }

    /// Read until a full frame is available, or `deadline` (when set)
    /// passes. `None` blocks indefinitely.
    fn recv_frame(&mut self, deadline: Option<Instant>) -> Result<Bytes> {
        loop {
            if let Some(payload) = self.take_frame() {
                return Ok(payload);
            }
            let timeout = match deadline {
                None => None,
                Some(d) => {
                    let Some(left) = d
                        .checked_duration_since(Instant::now())
                        .filter(|l| !l.is_zero())
                    else {
                        return Err(ClusterError::Timeout {
                            peer: "tcp peer",
                            after: Duration::ZERO,
                        });
                    };
                    Some(left)
                }
            };
            // `set_read_timeout(Some(ZERO))` is an error on std
            // sockets; the filter above guarantees non-zero.
            self.stream.set_read_timeout(timeout).map_err(|e| {
                ClusterError::Io(pdtl_io::IoError::os("set_read_timeout", "tcp", e))
            })?;
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(ClusterError::Disconnected("tcp peer")),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    return Err(ClusterError::Timeout {
                        peer: "tcp peer",
                        after: Duration::ZERO,
                    })
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return Err(ClusterError::Disconnected("tcp peer")),
            }
        }
    }
}

/// TCP transport endpoint with length-prefixed frames.
pub struct TcpTransport {
    reader: Mutex<FrameReader>,
    writer: Mutex<TcpStream>,
    traffic: Arc<NetTraffic>,
}

impl TcpTransport {
    /// Wrap an established stream.
    pub fn from_stream(stream: TcpStream, traffic: Arc<NetTraffic>) -> Result<Self> {
        let reader = stream
            .try_clone()
            .map_err(|e| ClusterError::Io(pdtl_io::IoError::os("clone", "tcp", e)))?;
        Ok(Self {
            reader: Mutex::new(FrameReader {
                stream: reader,
                buf: Vec::new(),
            }),
            writer: Mutex::new(stream),
            traffic,
        })
    }

    /// Connect to `addr`.
    pub fn connect(addr: &str, traffic: Arc<NetTraffic>) -> Result<Self> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ClusterError::Io(pdtl_io::IoError::os("connect", addr, e)))?;
        Self::from_stream(stream, traffic)
    }

    fn recv_inner(&self, deadline: Option<Instant>, timeout: Duration) -> Result<Message> {
        let mut r = self.reader.lock();
        let payload = r.recv_frame(deadline).map_err(|e| match e {
            // Stamp the caller's timeout onto the error for display.
            ClusterError::Timeout { peer, .. } => ClusterError::Timeout {
                peer,
                after: timeout,
            },
            other => other,
        })?;
        Message::decode(payload)
    }
}

impl Transport for TcpTransport {
    fn send(&self, msg: &Message) -> Result<()> {
        let encoded = msg.encode();
        // frame header + payload both cross the wire
        charge(&self.traffic, msg, encoded.len() as u64 + 4);
        let mut w = self.writer.lock();
        w.write_all(&(encoded.len() as u32).to_le_bytes())
            .and_then(|_| w.write_all(&encoded))
            .map_err(|e| ClusterError::Io(pdtl_io::IoError::os("send", "tcp", e)))
    }

    fn recv(&self) -> Result<Message> {
        self.recv_inner(None, Duration::ZERO)
    }

    fn recv_deadline(&self, timeout: Duration) -> Result<Message> {
        self.recv_inner(Some(Instant::now() + timeout), timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{NodeDirectives, WorkerConfig};

    fn config_msg() -> Message {
        Message::Config {
            node: 1,
            graph_base: "/tmp/g".into(),
            workers: vec![WorkerConfig {
                start: 0,
                end: 10,
                budget_edges: 5,
                scan_pruning: true,
                backend: pdtl_io::IoBackend::default(),
                io_latency_us: 0,
                read_fault: None,
                codec: pdtl_io::Codec::Raw,
            }],
            listing: false,
            directives: NodeDirectives::default(),
        }
    }

    #[test]
    fn in_proc_round_trip_and_accounting() {
        let traffic = NetTraffic::new();
        let (a, b) = in_proc_pair(traffic.clone());
        let msg = config_msg();
        a.send(&msg).unwrap();
        assert_eq!(b.recv().unwrap(), msg);
        assert_eq!(traffic.config_bytes(), msg.wire_size());

        let reply = Message::Results {
            node: 1,
            workers: vec![],
        };
        b.send(&reply).unwrap();
        assert_eq!(a.recv().unwrap(), reply);
        assert_eq!(traffic.result_bytes(), reply.wire_size());
    }

    #[test]
    fn in_proc_disconnect_reported() {
        let traffic = NetTraffic::new();
        let (a, b) = in_proc_pair(traffic);
        drop(b);
        assert!(matches!(
            a.send(&config_msg()),
            Err(ClusterError::Disconnected(_))
        ));
        assert!(matches!(a.recv(), Err(ClusterError::Disconnected(_))));
        assert!(matches!(
            a.recv_deadline(Duration::from_secs(5)),
            Err(ClusterError::Disconnected(_))
        ));
    }

    #[test]
    fn in_proc_deadline_distinguishes_timeout_from_disconnect() {
        let traffic = NetTraffic::new();
        let (a, b) = in_proc_pair(traffic);
        assert!(matches!(
            a.recv_deadline(Duration::from_millis(5)),
            Err(ClusterError::Timeout { .. })
        ));
        b.send(&Message::Shutdown).unwrap();
        assert_eq!(
            a.recv_deadline(Duration::from_secs(5)).unwrap(),
            Message::Shutdown
        );
    }

    #[test]
    fn control_traffic_classified() {
        let traffic = NetTraffic::new();
        let (a, b) = in_proc_pair(traffic.clone());
        let hb = Message::Progress { node: 1, seq: 0 };
        a.send(&hb).unwrap();
        a.send(&Message::Shutdown).unwrap();
        b.recv().unwrap();
        b.recv().unwrap();
        assert_eq!(
            traffic.control_bytes(),
            hb.wire_size() + Message::Shutdown.wire_size()
        );
        assert_eq!(traffic.config_bytes(), 0);
        assert_eq!(traffic.result_bytes(), 0);
    }

    #[test]
    fn triangle_traffic_classified() {
        let traffic = NetTraffic::new();
        let (a, b) = in_proc_pair(traffic.clone());
        let msg = Message::Triangles {
            node: 0,
            triples: vec![(1, 2, 3); 10],
        };
        a.send(&msg).unwrap();
        b.recv().unwrap();
        assert_eq!(traffic.triangle_bytes(), msg.wire_size());
        assert_eq!(traffic.config_bytes(), 0);
    }

    #[test]
    fn tcp_round_trip_over_loopback() {
        let traffic = NetTraffic::new();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let t2 = traffic.clone();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let t = TcpTransport::from_stream(stream, t2).unwrap();
            let msg = t.recv().unwrap();
            t.send(&msg).unwrap(); // echo
        });
        let client = TcpTransport::connect(&addr, traffic.clone()).unwrap();
        let msg = config_msg();
        client.send(&msg).unwrap();
        assert_eq!(client.recv().unwrap(), msg);
        server.join().unwrap();
        // both directions counted, with 4-byte frame headers
        assert_eq!(traffic.config_bytes(), 2 * (msg.wire_size() + 4));
    }

    #[test]
    fn tcp_deadline_times_out_then_delivers() {
        let traffic = NetTraffic::new();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let t2 = traffic.clone();
        let (release_tx, release_rx) = unbounded::<()>();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let t = TcpTransport::from_stream(stream, t2).unwrap();
            release_rx.recv().unwrap(); // hold the reply until told
            t.send(&Message::Progress { node: 2, seq: 1 }).unwrap();
        });
        let client = TcpTransport::connect(&addr, traffic).unwrap();
        // nothing sent yet: deadline expires as a Timeout
        assert!(matches!(
            client.recv_deadline(Duration::from_millis(10)),
            Err(ClusterError::Timeout { .. })
        ));
        release_tx.send(()).unwrap();
        // the same reader then delivers the full frame
        assert_eq!(
            client.recv_deadline(Duration::from_secs(30)).unwrap(),
            Message::Progress { node: 2, seq: 1 }
        );
        server.join().unwrap();
    }

    #[test]
    fn tcp_partial_frame_survives_a_deadline() {
        // A frame split across the deadline: the first half arrives,
        // the deadline fires, then the second half completes the frame
        // on the next call — framing must not desynchronize.
        let traffic = NetTraffic::new();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let (release_tx, release_rx) = unbounded::<()>();
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            let msg = Message::NodeError {
                node: 5,
                detail: "split across reads".into(),
            };
            let encoded = msg.encode();
            let mut framed = (encoded.len() as u32).to_le_bytes().to_vec();
            framed.extend_from_slice(&encoded);
            let mid = framed.len() / 2;
            stream.write_all(&framed[..mid]).unwrap();
            stream.flush().unwrap();
            release_rx.recv().unwrap();
            stream.write_all(&framed[mid..]).unwrap();
        });
        let client = TcpTransport::connect(&addr, traffic).unwrap();
        // long enough to surely buffer the first half, short enough to
        // expire before the second half is released
        let first = client.recv_deadline(Duration::from_millis(50));
        assert!(
            matches!(first, Err(ClusterError::Timeout { .. })),
            "{first:?}"
        );
        release_tx.send(()).unwrap();
        assert_eq!(
            client.recv_deadline(Duration::from_secs(30)).unwrap(),
            Message::NodeError {
                node: 5,
                detail: "split across reads".into(),
            }
        );
        server.join().unwrap();
    }

    #[test]
    fn tcp_disconnect_reported_on_deadline_recv() {
        let traffic = NetTraffic::new();
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            drop(stream); // immediate close
        });
        let client = TcpTransport::connect(&addr, NetTraffic::new()).unwrap();
        drop(traffic);
        server.join().unwrap();
        assert!(matches!(
            client.recv_deadline(Duration::from_secs(30)),
            Err(ClusterError::Disconnected(_))
        ));
    }
}
