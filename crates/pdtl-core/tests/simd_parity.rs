//! SIMD ↔ scalar kernel parity (proptest + adversarial fixtures).
//!
//! The module contract under test: at every [`SimdLevel`], every kernel
//! entry point produces the *identical* `(matches, comparisons)` pair
//! and the identical ascending visit sequence as the scalar kernels
//! (`SimdLevel::Off`). This is what keeps `WorkerReport::cpu_ops`, the
//! arboricity-bound tests and the crossover ablations meaningful when
//! the vector tier is live — the level may only move wall time.
//!
//! Shapes are chosen to be hostile to the vector kernels: lengths
//! straddling the 4- and 8-lane block boundaries, ties at block edges,
//! values straddling the sign bit and hugging `u32::MAX` (the lane
//! compares are signed and must be bias-corrected), empty and singleton
//! slices, and heavy skew in both argument orders.

use pdtl_core::intersect::{
    intersect_adaptive_visit_counted_with, intersect_gallop_visit_counted_with,
    intersect_visit_counted_with, SimdLevel,
};
use proptest::prelude::*;

/// Sorted, strictly increasing (what every adjacency list guarantees).
fn canon(mut v: Vec<u32>) -> Vec<u32> {
    v.sort_unstable();
    v.dedup();
    v
}

type KernelWith = fn(SimdLevel, &[u32], &[u32], &mut dyn FnMut(u32)) -> (u64, u64);

const KERNELS: [(&str, KernelWith); 3] = [
    ("merge", |l, a, b, v| {
        intersect_visit_counted_with(l, a, b, v)
    }),
    ("gallop", |l, a, b, v| {
        intersect_gallop_visit_counted_with(l, a, b, v)
    }),
    ("adaptive", |l, a, b, v| {
        intersect_adaptive_visit_counted_with(l, a, b, v)
    }),
];

/// Assert every level matches scalar on `(matches, comparisons, visit
/// order)` for every kernel entry point, in both argument orders.
fn assert_parity(a: &[u32], b: &[u32]) -> Result<(), TestCaseError> {
    for (name, kernel) in KERNELS {
        for (x, y) in [(a, b), (b, a)] {
            let mut scalar_order = Vec::new();
            let scalar = kernel(SimdLevel::Off, x, y, &mut |v| scalar_order.push(v));
            prop_assert!(
                scalar_order.windows(2).all(|w| w[0] < w[1]),
                "{name}: scalar visit order not ascending"
            );
            for level in [SimdLevel::Sse2, SimdLevel::Avx2] {
                let mut order = Vec::new();
                let got = kernel(level, x, y, &mut |v| order.push(v));
                prop_assert!(
                    got == scalar,
                    "{name} at {level}: (matches, cmps) {got:?} != scalar {scalar:?} \
                     on {}x{}",
                    x.len(),
                    y.len()
                );
                prop_assert!(
                    order == scalar_order,
                    "{name} at {level}: visit order diverges on {}x{}",
                    x.len(),
                    y.len()
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn parity_on_random_interleaved_sets(
        a in prop::collection::vec(0u32..2000, 0..260),
        b in prop::collection::vec(0u32..2000, 0..260),
    ) {
        assert_parity(&canon(a), &canon(b))?;
    }

    #[test]
    fn parity_on_skewed_sets(
        a in prop::collection::vec(0u32..50_000, 0..24),
        b in prop::collection::vec(0u32..50_000, 0..2000),
    ) {
        assert_parity(&canon(a), &canon(b))?;
    }

    #[test]
    fn parity_near_u32_max(
        a in prop::collection::vec(0u32..600, 0..120),
        b in prop::collection::vec(0u32..600, 0..120),
    ) {
        // The signed-compare trap: all values in the top of the u32
        // range, straddling nothing but the sign bit's shadow.
        let a: Vec<u32> = canon(a).into_iter().map(|v| u32::MAX - v).collect();
        let b: Vec<u32> = canon(b).into_iter().map(|v| u32::MAX - v).collect();
        assert_parity(&canon(a), &canon(b))?;
    }

    #[test]
    fn parity_straddling_the_sign_bit(
        a in prop::collection::vec(0u32..400, 0..120),
        b in prop::collection::vec(0u32..400, 0..120),
    ) {
        // Values on both sides of 0x8000_0000, where signed lane order
        // inverts unsigned order.
        let shift = |v: u32| 0x8000_0000u32.wrapping_sub(200).wrapping_add(v);
        let a: Vec<u32> = canon(a).into_iter().map(shift).collect();
        let b: Vec<u32> = canon(b).into_iter().map(shift).collect();
        assert_parity(&canon(a), &canon(b))?;
    }
}

#[test]
fn parity_on_block_boundary_lengths() {
    // Every length pair straddling the 4- and 8-lane block widths and
    // the SIMD gates, with three overlap patterns each.
    let lens = [
        0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65,
    ];
    for &la in &lens {
        for &lb in &lens {
            // dense ties
            let a: Vec<u32> = (0..la as u32).collect();
            let b: Vec<u32> = (0..lb as u32).collect();
            assert_parity(&a, &b).unwrap();
            // strided partial overlap
            let a: Vec<u32> = (0..la as u32).map(|x| x * 3).collect();
            let b: Vec<u32> = (0..lb as u32).map(|x| x * 2).collect();
            assert_parity(&a, &b).unwrap();
            // disjoint runs meeting at a block edge
            let a: Vec<u32> = (0..la as u32).collect();
            let b: Vec<u32> = (0..lb as u32).map(|x| la as u32 + x).collect();
            assert_parity(&a, &b).unwrap();
        }
    }
}

#[test]
fn parity_on_ties_at_block_edges() {
    // Equal values landing exactly on lanes 0, W-1 and W of each block:
    // the rotate-and-compare merge must catch hits in every relative
    // lane position, once each.
    for w in [4u32, 8] {
        for off in [0u32, 1, w - 1, w, w + 1] {
            let a: Vec<u32> = (0..96).collect();
            let b: Vec<u32> = (0..96).map(|x| x * w + off).collect();
            assert_parity(&a, &b).unwrap();
        }
    }
}

#[test]
fn parity_on_empty_and_singleton_slices() {
    let long: Vec<u32> = (0..100).collect();
    for edge in [
        vec![],
        vec![0u32],
        vec![50],
        vec![99],
        vec![100],
        vec![u32::MAX],
    ] {
        assert_parity(&edge, &long).unwrap();
        assert_parity(&edge, &[]).unwrap();
        assert_parity(&edge, &edge.clone()).unwrap();
    }
}

#[test]
fn parity_at_extreme_skew() {
    // One element galloped into a huge set — frontier at the start,
    // middle, end, and past the end.
    let large: Vec<u32> = (0..100_000).map(|x| x * 2).collect();
    for probe in [
        vec![0u32],
        vec![1],
        vec![99_999],
        vec![199_998],
        vec![u32::MAX],
    ] {
        assert_parity(&probe, &large).unwrap();
    }
    let spread: Vec<u32> = (0..20).map(|x| x * 9_999).collect();
    assert_parity(&spread, &large).unwrap();
}
