//! The degree-based total order `≺` (Definition III.2).
//!
//! `u ≺ v` iff `d(u) < d(v)`, or `d(u) = d(v)` and `u < v`. Orienting
//! every edge from its `≺`-smaller endpoint turns `G` into a DAG `G*`
//! whose out-degrees are bounded by `O(α)` on average (Theorem IV.1) —
//! the property that gives MGT its `O(α|E|)` intersection cost. The same
//! order defines each triangle's unique *cone vertex* (its `≺`-minimum)
//! and *pivot edge* (the remaining pair), so every triangle is reported
//! exactly once.

/// The degree-based strict total order over vertices.
#[derive(Debug, Clone, Copy)]
pub struct DegreeOrder<'a> {
    degrees: &'a [u32],
}

impl<'a> DegreeOrder<'a> {
    /// Build the order from the degree array of `G`.
    pub fn new(degrees: &'a [u32]) -> Self {
        Self { degrees }
    }

    /// `u ≺ v`?
    #[inline]
    pub fn precedes(&self, u: u32, v: u32) -> bool {
        let (du, dv) = (self.degrees[u as usize], self.degrees[v as usize]);
        du < dv || (du == dv && u < v)
    }

    /// Total-order comparison.
    #[inline]
    pub fn cmp(&self, u: u32, v: u32) -> std::cmp::Ordering {
        self.degrees[u as usize]
            .cmp(&self.degrees[v as usize])
            .then(u.cmp(&v))
    }

    /// The `≺`-minimum of a triangle — its cone vertex.
    pub fn cone(&self, t: (u32, u32, u32)) -> u32 {
        let (a, b, c) = t;
        let ab = if self.precedes(a, b) { a } else { b };
        if self.precedes(ab, c) {
            ab
        } else {
            c
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_degree_first() {
        let degrees = [3, 1, 2];
        let ord = DegreeOrder::new(&degrees);
        assert!(ord.precedes(1, 2)); // d=1 < d=2
        assert!(ord.precedes(2, 0)); // d=2 < d=3
        assert!(!ord.precedes(0, 1));
    }

    #[test]
    fn ties_broken_by_id() {
        let degrees = [2, 2, 2];
        let ord = DegreeOrder::new(&degrees);
        assert!(ord.precedes(0, 1));
        assert!(ord.precedes(1, 2));
        assert!(!ord.precedes(2, 0));
    }

    #[test]
    fn is_a_strict_total_order() {
        // irreflexive, antisymmetric, transitive, total — exhaustively on
        // a small degree array.
        let degrees = [5, 1, 1, 3, 5, 0];
        let ord = DegreeOrder::new(&degrees);
        let n = degrees.len() as u32;
        for u in 0..n {
            assert!(!ord.precedes(u, u), "irreflexive");
            for v in 0..n {
                if u != v {
                    assert!(
                        ord.precedes(u, v) ^ ord.precedes(v, u),
                        "exactly one of u≺v, v≺u"
                    );
                }
                for w in 0..n {
                    if ord.precedes(u, v) && ord.precedes(v, w) {
                        assert!(ord.precedes(u, w), "transitive");
                    }
                }
            }
        }
    }

    #[test]
    fn cmp_consistent_with_precedes() {
        let degrees = [4, 2, 2, 7];
        let ord = DegreeOrder::new(&degrees);
        for u in 0..4u32 {
            for v in 0..4u32 {
                assert_eq!(
                    ord.cmp(u, v) == std::cmp::Ordering::Less,
                    ord.precedes(u, v)
                );
            }
        }
    }

    #[test]
    fn cone_is_minimum() {
        let degrees = [9, 1, 5];
        let ord = DegreeOrder::new(&degrees);
        assert_eq!(ord.cone((0, 1, 2)), 1);
        assert_eq!(ord.cone((2, 0, 1)), 1);
        assert_eq!(ord.cone((0, 2, 1)), 1);
    }
}
