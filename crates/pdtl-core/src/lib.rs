//! PDTL core: the paper's primary contribution.
//!
//! The pipeline implemented here is exactly the paper's Section IV:
//!
//! 1. **Orientation** ([`orient`]): apply the degree-based total order `≺`
//!    (Definition III.2) to the undirected input, keeping edge `(u, v)`
//!    only when `u ≺ v`. The result `G*` is a DAG with `|E*| = |E|` and is
//!    computed sequentially or across all cores (Figure 2).
//! 2. **Load balancing** ([`balance`]): split the oriented adjacency into
//!    one *contiguous* range of pivot-edge positions per logical
//!    processor, either naively (equal edges) or weighted by
//!    post-orientation in-degrees (Section IV-B1, Figure 9).
//! 3. **MGT** ([`mgt`]): each processor runs the modified Massive Graph
//!    Triangulation engine (Algorithm 2) over its range: load `Θ(cM)`
//!    oriented edges into the `edg`/`ind` arrays, then stream every
//!    vertex's out-list through the `nm`/`nmp` scratch arrays and report
//!    triangles by sorted-array intersection — arrays, not hash sets,
//!    which the paper found >10× faster.
//! 4. **Aggregation** ([`runner`]): the multicore [`LocalRunner`] wires the
//!    phases together on one machine; the distributed runner lives in
//!    `pdtl-cluster`.
//!
//! [`theory`] encodes the paper's complexity bounds (Theorems IV.2/IV.3)
//! so tests can assert that measured work stays within them.

pub mod balance;
pub mod error;
pub mod intersect;
pub mod metrics;
pub mod mgt;
pub mod order;
pub mod orient;
pub mod runner;
pub mod sink;
pub mod theory;

pub use balance::{split_ranges, BalanceStrategy, EdgeRange};
pub use error::{CoreError, Result};
pub use metrics::{PhaseReport, RunReport, WorkerReport};
pub use mgt::{mgt_count_range, mgt_count_range_opt, mgt_in_memory, mgt_in_memory_opt, MgtOptions};
pub use order::DegreeOrder;
pub use orient::{orient_csr, orient_to_disk, OrientedCsr, OrientedGraph};
pub use runner::{count_triangles, count_triangles_with, LocalConfig, LocalRunner, ScratchDir};
pub use sink::{CollectSink, CountSink, FileSink, TriangleSink};
