//! Sorted-array intersection kernels.
//!
//! The inner loop of the modified MGT: reporting `N(u) ∩ E_v` for each
//! `v ∈ N⁺(u)`. The paper's key implementation finding (§IV-A1) is that
//! sorted arrays beat any hash structure by more than 10× here, so these
//! kernels are plain merges over sorted `u32` slices.
//!
//! * [`intersect_visit`] — two-pointer merge, `O(|a| + |b|)`, with two
//!   forms picked by length ratio: near-equal lengths take the classic
//!   three-way branch (one comparison per step — on interleaved inputs
//!   the advance-loop form's extra frontier re-tests cost ~50%, the
//!   PR 2 `1000x1000` regression), while skewed lengths take the
//!   advance-loop form (each loop catches one cursor up to the other's
//!   frontier with a single comparison per step — it wins when one side
//!   produces long runs, which is what skewed lengths guarantee). The
//!   fully branchless cmov form was also measured and loses everywhere
//!   (serial dependency chain).
//! * [`intersect_gallop_visit`] — galloping (exponential search) from the
//!   smaller side, `O(|a| log(|b|/|a|))`; wins when sizes are lopsided,
//!   which happens constantly on scale-free graphs (a hub's list against
//!   a leaf's). The ablation bench quantifies the crossover.
//! * [`intersect_adaptive_visit`] — picks between the two by size ratio;
//!   this is what the engine uses.
//!
//! Each kernel has a `*_counted` variant returning `(matches,
//! comparisons)`, where comparisons are the *actual* element comparisons
//! performed — `O(s log(l/s))` for galloping, not `s + l` — so
//! `WorkerReport::cpu_ops` reflects the work really done.

/// Size ratio beyond which galloping beats the linear merge. Justified
/// by the `gallop_crossover` ablation bench, which sweeps ratios 1–10⁴
/// into a 100k-element set *and* measures the three kernel-bench shapes
/// directly (this container, min/iter): ratio 1 (`1000x1000`) linear
/// 1.2 µs vs gallop 3.4 µs — linear wins 3×; ratio 10 (10k into 100k)
/// break-even; ratio 100 (`100x10000`) linear 5.8 µs vs gallop 1.3 µs;
/// ratio 10⁴ (`10x100000`) linear 41 µs vs gallop 0.24 µs. The
/// crossover sits just above 10, so gallop whenever the ratio
/// exceeds 12.
const GALLOP_RATIO: usize = 12;

/// Size ratio beyond which the advance-loop merge beats the three-way
/// interleaved merge (both linear). Below it, inputs interleave tightly
/// and the advance loops' per-frontier re-test adds ~50% comparisons
/// (the PR 2 `1000x1000` regression, 1.33 → 2.01 µs); above it, one
/// side produces multi-element runs and the single-comparison advance
/// steps beat the three-way branch (`100x10000` 10.4 → 6.2 µs in PR 2).
/// Any threshold in (1, 10] separates the bench shapes; 4 leaves margin
/// on both sides.
const ADVANCE_RATIO: usize = 4;

/// Visit every element of `a ∩ b` in ascending order. Returns the count.
#[inline]
pub fn intersect_visit(a: &[u32], b: &[u32], visit: impl FnMut(u32)) -> u64 {
    intersect_visit_counted(a, b, visit).0
}

/// Merge intersection returning `(matches, comparisons)`.
///
/// Dispatches on length ratio: tightly interleaved (near-equal-length)
/// inputs take the branch-predictable three-way merge, skewed inputs
/// take the advance-loop merge (see `ADVANCE_RATIO`). Both are
/// `O(|a| + |b|)` with at most `2(|a| + |b|)` counted comparisons and
/// produce identical output (property-tested).
#[inline]
pub fn intersect_visit_counted(a: &[u32], b: &[u32], visit: impl FnMut(u32)) -> (u64, u64) {
    if a.is_empty() || b.is_empty() {
        return (0, 0);
    }
    let (s, l) = if a.len() <= b.len() {
        (a.len(), b.len())
    } else {
        (b.len(), a.len())
    };
    if l >= ADVANCE_RATIO * s {
        intersect_advance_counted(a, b, visit)
    } else {
        intersect_interleaved_counted(a, b, visit)
    }
}

/// The three-way-branch merge: one comparison per step, the fast path
/// on inputs whose elements interleave (near-equal lengths). Callers
/// guarantee both slices are non-empty.
///
/// No comparison counter runs in the loop: every step advances `i`,
/// `j`, or both (on a match), so the step count is recoverable as
/// `i + j - matches` — one comparison per step, none of the counter's
/// loop-carried dependency.
#[inline]
fn intersect_interleaved_counted(a: &[u32], b: &[u32], mut visit: impl FnMut(u32)) -> (u64, u64) {
    let (mut i, mut j) = (0usize, 0usize);
    let mut matches = 0u64;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                visit(a[i]);
                matches += 1;
                i += 1;
                j += 1;
            }
        }
    }
    (matches, (i + j) as u64 - matches)
}

/// The advance-loop merge: each tight loop runs one cursor up to the
/// other's frontier with a single comparison per step, the fast path
/// when one side produces long runs (skewed lengths). Callers guarantee
/// both slices are non-empty.
#[inline]
fn intersect_advance_counted(a: &[u32], b: &[u32], mut visit: impl FnMut(u32)) -> (u64, u64) {
    let (mut i, mut j) = (0usize, 0usize);
    let mut matches = 0u64;
    let mut cmps = 0u64;
    'outer: loop {
        // Tight single-comparison advance loops: each catches one side
        // up to the other's frontier before re-testing for a match.
        let mut y = b[j];
        while a[i] < y {
            cmps += 1;
            i += 1;
            if i == a.len() {
                break 'outer;
            }
        }
        let x = a[i];
        while b[j] < x {
            cmps += 1;
            j += 1;
            if j == b.len() {
                break 'outer;
            }
        }
        y = b[j];
        cmps += 1;
        if x == y {
            visit(x);
            matches += 1;
            i += 1;
            j += 1;
            if i == a.len() || j == b.len() {
                break;
            }
        }
    }
    (matches, cmps)
}

/// Galloping intersection: exponential-probe each element of the smaller
/// slice into the remainder of the larger one. Returns the count.
#[inline]
pub fn intersect_gallop_visit(a: &[u32], b: &[u32], visit: impl FnMut(u32)) -> u64 {
    intersect_gallop_visit_counted(a, b, visit).0
}

/// Galloping intersection returning `(matches, comparisons)`. Every
/// probe of the large slice (exponential step or binary-search midpoint)
/// counts as one comparison.
#[inline]
pub fn intersect_gallop_visit_counted(
    a: &[u32],
    b: &[u32],
    mut visit: impl FnMut(u32),
) -> (u64, u64) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut matches = 0u64;
    let mut cmps = 0u64;
    let mut lo = 0usize;
    for &x in small {
        // Exponential probe from the current frontier.
        let mut step = 1usize;
        let mut hi = lo;
        while hi < large.len() {
            cmps += 1;
            if large[hi] >= x {
                break;
            }
            lo = hi + 1;
            hi = lo + step;
            step <<= 1;
        }
        // Invariant: if hi < len then large[hi] >= x, so the search
        // window must include index hi itself.
        let mut right = (hi + 1).min(large.len());
        // Binary search for x in large[lo..right], counting probes.
        while lo < right {
            let mid = lo + (right - lo) / 2;
            cmps += 1;
            match large[mid].cmp(&x) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => right = mid,
                std::cmp::Ordering::Equal => {
                    visit(x);
                    matches += 1;
                    lo = mid + 1;
                    break;
                }
            }
        }
        if lo >= large.len() {
            break;
        }
    }
    (matches, cmps)
}

/// Adaptive intersection: gallop when sizes are lopsided, merge
/// otherwise. Equal output on all inputs (property-tested).
#[inline]
pub fn intersect_adaptive_visit(a: &[u32], b: &[u32], visit: impl FnMut(u32)) -> u64 {
    intersect_adaptive_visit_counted(a, b, visit).0
}

/// Adaptive intersection returning `(matches, comparisons)`.
#[inline]
pub fn intersect_adaptive_visit_counted(
    a: &[u32],
    b: &[u32],
    visit: impl FnMut(u32),
) -> (u64, u64) {
    let (s, l) = if a.len() <= b.len() {
        (a.len(), b.len())
    } else {
        (b.len(), a.len())
    };
    if s * GALLOP_RATIO < l {
        intersect_gallop_visit_counted(a, b, visit)
    } else {
        intersect_visit_counted(a, b, visit)
    }
}

/// Count-only adaptive intersection.
#[inline]
pub fn intersect_count(a: &[u32], b: &[u32]) -> u64 {
    intersect_adaptive_visit(a, b, |_| {})
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(
        f: impl Fn(&[u32], &[u32], &mut dyn FnMut(u32)) -> u64,
        a: &[u32],
        b: &[u32],
    ) -> (u64, Vec<u32>) {
        let mut out = Vec::new();
        let n = f(a, b, &mut |x| out.push(x));
        (n, out)
    }

    #[test]
    fn basic_intersection() {
        let (n, out) = collect(
            |a, b, v| intersect_visit(a, b, v),
            &[1, 3, 5, 7],
            &[2, 3, 4, 7, 9],
        );
        assert_eq!(n, 2);
        assert_eq!(out, vec![3, 7]);
    }

    #[test]
    fn disjoint_and_empty() {
        assert_eq!(intersect_count(&[1, 2], &[3, 4]), 0);
        assert_eq!(intersect_count(&[], &[1]), 0);
        assert_eq!(intersect_count(&[], &[]), 0);
    }

    #[test]
    fn identical_slices() {
        let a = [2u32, 4, 6, 8];
        assert_eq!(intersect_count(&a, &a), 4);
    }

    #[test]
    fn gallop_matches_linear_lopsided() {
        let small = [5u32, 500, 5000, 49999];
        let large: Vec<u32> = (0..50_000).collect();
        let (n1, o1) = collect(|a, b, v| intersect_visit(a, b, v), &small, &large);
        let (n2, o2) = collect(|a, b, v| intersect_gallop_visit(a, b, v), &small, &large);
        assert_eq!(n1, 4);
        assert_eq!(n1, n2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn gallop_argument_order_irrelevant() {
        let a: Vec<u32> = (0..100).map(|x| x * 3).collect();
        let b: Vec<u32> = (0..1000).collect();
        let (n1, o1) = collect(|a, b, v| intersect_gallop_visit(a, b, v), &a, &b);
        let (n2, o2) = collect(|a, b, v| intersect_gallop_visit(a, b, v), &b, &a);
        assert_eq!(n1, n2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn all_kernels_agree_on_randomish_inputs() {
        // deterministic pseudo-random sorted sets
        let mut x = 1u64;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u32 % 10_000
        };
        for trial in 0..50 {
            let mut a: Vec<u32> = (0..(trial * 7 % 300)).map(|_| next()).collect();
            let mut b: Vec<u32> = (0..(trial * 13 % 900)).map(|_| next()).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let (n1, o1) = collect(|a, b, v| intersect_visit(a, b, v), &a, &b);
            let (n2, o2) = collect(|a, b, v| intersect_gallop_visit(a, b, v), &a, &b);
            let (n3, o3) = collect(|a, b, v| intersect_adaptive_visit(a, b, v), &a, &b);
            assert_eq!((n1, &o1), (n2, &o2), "trial {trial}");
            assert_eq!((n1, &o1), (n3, &o3), "trial {trial}");
        }
    }

    #[test]
    fn interleaved_and_advance_forms_agree() {
        // The ratio dispatch is an optimisation, never a semantic
        // change: both linear forms must produce identical output on
        // every shape (interleaved, skewed, ties at both ends).
        let shapes: [(usize, usize); 6] =
            [(8, 8), (100, 100), (50, 190), (10, 41), (3, 1000), (1, 7)];
        for &(la, lb) in &shapes {
            let a: Vec<u32> = (0..la as u32).map(|x| x * 3).collect();
            let b: Vec<u32> = (0..lb as u32).map(|x| x * 2 + 1).collect();
            for (x, y) in [(&a, &b), (&b, &a)] {
                let mut o1 = Vec::new();
                let (n1, _) = intersect_interleaved_counted(x, y, |v| o1.push(v));
                let mut o2 = Vec::new();
                let (n2, _) = intersect_advance_counted(x, y, |v| o2.push(v));
                let mut o3 = Vec::new();
                let (n3, _) = intersect_visit_counted(x, y, |v| o3.push(v));
                assert_eq!((n1, &o1), (n2, &o2), "{la}x{lb}");
                assert_eq!((n1, &o1), (n3, &o3), "{la}x{lb}");
            }
        }
    }

    #[test]
    fn visit_order_is_ascending() {
        let a: Vec<u32> = (0..200).step_by(2).collect();
        let b: Vec<u32> = (0..200).step_by(3).collect();
        let (_, out) = collect(|a, b, v| intersect_adaptive_visit(a, b, v), &a, &b);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn merge_comparisons_are_linear() {
        let a: Vec<u32> = (0..500).map(|x| x * 2).collect();
        let b: Vec<u32> = (0..500).map(|x| x * 2 + 1).collect();
        let (m, cmps) = intersect_visit_counted(&a, &b, |_| {});
        assert_eq!(m, 0);
        // advance steps are bounded by |a| + |b|; the per-frontier match
        // re-test adds at most one comparison per advance
        assert!(cmps <= 2 * (a.len() + b.len()) as u64, "cmps {cmps}");
        assert!(cmps >= a.len() as u64);
    }

    #[test]
    fn gallop_comparisons_are_logarithmic() {
        // s elements probed into l: O(s * log(l/s)), far below s + l.
        let small: Vec<u32> = (0..16u32).map(|x| x * 6000).collect();
        let large: Vec<u32> = (0..100_000).collect();
        let (m, cmps) = intersect_gallop_visit_counted(&small, &large, |_| {});
        assert_eq!(m, 16);
        assert!(
            cmps < 16 * 2 * (17 + 2),
            "gallop should be O(s log(l/s)) comparisons, got {cmps}"
        );
        let (_, merge_cmps) = intersect_visit_counted(&small, &large, |_| {});
        assert!(cmps < merge_cmps / 10, "{cmps} vs merge {merge_cmps}");
    }

    #[test]
    fn counted_variants_agree_with_plain() {
        let a: Vec<u32> = (0..300).step_by(3).collect();
        let b: Vec<u32> = (0..300).step_by(7).collect();
        let (plain, _) = collect(|a, b, v| intersect_adaptive_visit(a, b, v), &a, &b);
        let (counted, cmps) = intersect_adaptive_visit_counted(&a, &b, |_| {});
        assert_eq!(plain, counted);
        assert!(cmps > 0);
    }
}
