//! Sorted-array intersection kernels.
//!
//! The inner loop of the modified MGT: reporting `N(u) ∩ E_v` for each
//! `v ∈ N⁺(u)`. The paper's key implementation finding (§IV-A1) is that
//! sorted arrays beat any hash structure by more than 10× here, so these
//! kernels are plain merges over sorted `u32` slices.
//!
//! * [`intersect_visit`] — textbook two-pointer merge, `O(|a| + |b|)`.
//! * [`intersect_gallop_visit`] — galloping (exponential search) from the
//!   smaller side, `O(|a| log(|b|/|a|))`; wins when sizes are lopsided,
//!   which happens constantly on scale-free graphs (a hub's list against
//!   a leaf's). The ablation bench quantifies the crossover.
//! * [`intersect_adaptive_visit`] — picks between the two by size ratio;
//!   this is what the engine uses.

/// Size ratio beyond which galloping beats the linear merge (determined
/// by the `ablations` bench; conservative).
const GALLOP_RATIO: usize = 16;

/// Visit every element of `a ∩ b` in ascending order. Returns the count.
#[inline]
pub fn intersect_visit(a: &[u32], b: &[u32], mut visit: impl FnMut(u32)) -> u64 {
    let (mut i, mut j) = (0usize, 0usize);
    let mut count = 0u64;
    while i < a.len() && j < b.len() {
        let (x, y) = (a[i], b[j]);
        if x < y {
            i += 1;
        } else if x > y {
            j += 1;
        } else {
            visit(x);
            count += 1;
            i += 1;
            j += 1;
        }
    }
    count
}

/// Galloping intersection: binary-search each element of the smaller
/// slice into the remainder of the larger one.
#[inline]
pub fn intersect_gallop_visit(a: &[u32], b: &[u32], mut visit: impl FnMut(u32)) -> u64 {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut count = 0u64;
    let mut lo = 0usize;
    for &x in small {
        // Exponential probe from the current frontier.
        let mut step = 1usize;
        let mut hi = lo;
        while hi < large.len() && large[hi] < x {
            lo = hi + 1;
            hi = lo + step;
            step <<= 1;
        }
        // Invariant: if hi < len then large[hi] >= x, so the search
        // window must include index hi itself.
        let hi = (hi + 1).min(large.len());
        match large[lo..hi].binary_search(&x) {
            Ok(k) => {
                visit(x);
                count += 1;
                lo += k + 1;
            }
            Err(k) => lo += k,
        }
        if lo >= large.len() {
            break;
        }
    }
    count
}

/// Adaptive intersection: gallop when sizes are lopsided, merge
/// otherwise. Equal output on all inputs (property-tested).
#[inline]
pub fn intersect_adaptive_visit(a: &[u32], b: &[u32], visit: impl FnMut(u32)) -> u64 {
    let (s, l) = if a.len() <= b.len() {
        (a.len(), b.len())
    } else {
        (b.len(), a.len())
    };
    if s * GALLOP_RATIO < l {
        intersect_gallop_visit(a, b, visit)
    } else {
        intersect_visit(a, b, visit)
    }
}

/// Count-only adaptive intersection.
#[inline]
pub fn intersect_count(a: &[u32], b: &[u32]) -> u64 {
    intersect_adaptive_visit(a, b, |_| {})
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(
        f: impl Fn(&[u32], &[u32], &mut dyn FnMut(u32)) -> u64,
        a: &[u32],
        b: &[u32],
    ) -> (u64, Vec<u32>) {
        let mut out = Vec::new();
        let n = f(a, b, &mut |x| out.push(x));
        (n, out)
    }

    #[test]
    fn basic_intersection() {
        let (n, out) = collect(
            |a, b, v| intersect_visit(a, b, v),
            &[1, 3, 5, 7],
            &[2, 3, 4, 7, 9],
        );
        assert_eq!(n, 2);
        assert_eq!(out, vec![3, 7]);
    }

    #[test]
    fn disjoint_and_empty() {
        assert_eq!(intersect_count(&[1, 2], &[3, 4]), 0);
        assert_eq!(intersect_count(&[], &[1]), 0);
        assert_eq!(intersect_count(&[], &[]), 0);
    }

    #[test]
    fn identical_slices() {
        let a = [2u32, 4, 6, 8];
        assert_eq!(intersect_count(&a, &a), 4);
    }

    #[test]
    fn gallop_matches_linear_lopsided() {
        let small = [5u32, 500, 5000, 49999];
        let large: Vec<u32> = (0..50_000).collect();
        let (n1, o1) = collect(|a, b, v| intersect_visit(a, b, v), &small, &large);
        let (n2, o2) = collect(|a, b, v| intersect_gallop_visit(a, b, v), &small, &large);
        assert_eq!(n1, 4);
        assert_eq!(n1, n2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn gallop_argument_order_irrelevant() {
        let a: Vec<u32> = (0..100).map(|x| x * 3).collect();
        let b: Vec<u32> = (0..1000).collect();
        let (n1, o1) = collect(|a, b, v| intersect_gallop_visit(a, b, v), &a, &b);
        let (n2, o2) = collect(|a, b, v| intersect_gallop_visit(a, b, v), &b, &a);
        assert_eq!(n1, n2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn all_kernels_agree_on_randomish_inputs() {
        // deterministic pseudo-random sorted sets
        let mut x = 1u64;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u32 % 10_000
        };
        for trial in 0..50 {
            let mut a: Vec<u32> = (0..(trial * 7 % 300)).map(|_| next()).collect();
            let mut b: Vec<u32> = (0..(trial * 13 % 900)).map(|_| next()).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let (n1, o1) = collect(|a, b, v| intersect_visit(a, b, v), &a, &b);
            let (n2, o2) = collect(|a, b, v| intersect_gallop_visit(a, b, v), &a, &b);
            let (n3, o3) = collect(|a, b, v| intersect_adaptive_visit(a, b, v), &a, &b);
            assert_eq!((n1, &o1), (n2, &o2), "trial {trial}");
            assert_eq!((n1, &o1), (n3, &o3), "trial {trial}");
        }
    }

    #[test]
    fn visit_order_is_ascending() {
        let a: Vec<u32> = (0..200).step_by(2).collect();
        let b: Vec<u32> = (0..200).step_by(3).collect();
        let (_, out) = collect(|a, b, v| intersect_adaptive_visit(a, b, v), &a, &b);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }
}
