//! Degree-based orientation into **rank space** (sequential and
//! multicore).
//!
//! Orientation rewrites the bidirectional input into `G* = (V, E*)` where
//! `(u, v) ∈ E*` iff `{u, v} ∈ E` and `u ≺ v` under the degree order —
//! and simultaneously relabels every vertex by its *rank* in that order,
//! so `u ≺ v ⟺ u < v` numerically. In rank space every out-neighbour of
//! `v` is greater than `v`, which is what lets the MGT inner loop
//! intersect only the admissible suffix of `N(u)` and prune whole
//! out-lists against a chunk's resident window. The [`RankMap`] is
//! carried on the oriented graph and translated back at the sink
//! boundary, so listings still emit original ids.
//!
//! The multicore path follows Section IV-B1: *"the master reads the
//! entire degree array into memory (provided |V| < PM), and each core
//! performs the orientation on a contiguous set of edges."* Relabeling
//! adds one counting pass: pass 1 scans the adjacency sequentially and
//! counts each vertex's oriented out-degree (fixing the rank-space
//! layout), pass 2 scans again and writes each filtered, rank-mapped,
//! sorted out-list directly at its rank-space position. Orientation
//! stays `O(scan(|E|))` I/Os (two scans instead of one) and `O(|E|)`
//! CPU plus the `O(|V| log |V|)` rank sort (Theorem IV.2's assumptions
//! already hold the degree array in memory).
//!
//! Alongside `base{.deg,.adj}` the orientation persists:
//!
//! * `base.map` — the rank → original-id table (`|V|` u32s);
//! * `base.bnd` — per-rank `(min, max)` out-neighbour bounds
//!   (`2|V|` u32s, `(u32::MAX, 0)` for empty lists), the `Θ(|V|)`
//!   index MGT's scan pruning seeks past non-overlapping out-lists with.
//!
//! Under [`Codec::DeltaVarint`] ([`orient_to_disk_with`]) the `.adj`
//! is additionally recompressed: rank space makes every out-list a
//! strictly increasing run with small gaps, which delta + varint
//! encoding shrinks ~2–4× — cutting the real `bytes_read` of every
//! multi-pass MGT scan, exactly where Theorem IV.2's `|E|²/(MB)` term
//! dominates. The `.vix`/`.hdr` sidecars (see [`pdtl_graph::disk`])
//! keep seeks and skips working in decoded index space.

use std::fs::File;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use pdtl_graph::disk::{offsets_from_degrees, write_graph_header};
use pdtl_graph::manifest::Manifest;
use pdtl_graph::rank::RankMap;
use pdtl_graph::{DiskGraph, Graph};
use pdtl_io::{Codec, CpuIoTimer, IoStats, U32Reader, U32Writer, VarintAdjWriter, VarintIndex};
use rayon::prelude::*;

use crate::error::Result;
use crate::metrics::PhaseReport;

/// `(min, max)` out-neighbour bounds of a vertex with no out-edges.
pub const EMPTY_BOUNDS: (u32, u32) = (u32::MAX, 0);

/// An oriented graph held in memory (used by baselines and the
/// in-memory MGT variant). Vertices are **ranks**: adjacency, offsets
/// and degrees are all indexed by rank, and every out-neighbour of `v`
/// is numerically greater than `v`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrientedCsr {
    /// Oriented CSR offsets (`n + 1`), rank-indexed.
    pub offsets: Vec<u64>,
    /// Oriented adjacency in rank space (out-neighbours, sorted; all
    /// strictly greater than their source rank).
    pub adj: Vec<u32>,
    /// The rank ↔ original-id bijection.
    pub map: RankMap,
    /// Original (undirected) degree of the vertex at each rank.
    pub orig_degrees: Vec<u32>,
    /// Maximum oriented out-degree `d*_max`.
    pub d_star_max: u32,
}

impl OrientedCsr {
    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// `|E*| = |E|`.
    pub fn m_star(&self) -> u64 {
        *self.offsets.last().unwrap()
    }

    /// Oriented out-degree of rank `v`.
    pub fn d_star(&self, v: u32) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// Oriented out-neighbours of rank `v` (ranks, sorted ascending).
    pub fn out(&self, v: u32) -> &[u32] {
        &self.adj[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Post-orientation in-degrees `d(v) - d*(v)` — the load-balancing
    /// weights of Section IV-B1, rank-indexed like everything else.
    pub fn in_degrees(&self) -> Vec<u32> {
        (0..self.num_vertices())
            .map(|v| self.orig_degrees[v as usize] - self.d_star(v))
            .collect()
    }
}

/// Orient an in-memory graph into rank space, using every available
/// core (see [`orient_csr_threads`]).
pub fn orient_csr(g: &Graph) -> OrientedCsr {
    orient_csr_threads(g, rayon::current_num_threads())
}

/// Orient an in-memory graph into rank space across `threads` cores.
///
/// Two strategies behind one deterministic output (byte-identical CSR
/// either way, asserted by the thread-invariance test):
///
/// * **One core — branchless counting transpose.** A sequential count
///   pass, then a scatter walking *target* ranks in ascending order so
///   every out-list lands sorted with no sorting at all. Both passes
///   are branchless: the keep test (`rank above mine`) holds for half
///   the entries with no pattern, so conditional increments replace
///   branches and discarded scatter writes land in a dummy slot via
///   cmov. This is what bought back the PR 2 relabeling regression
///   (`orient_csr_rmat10` 51.8 → 131 µs at PR 2; the branchless
///   transpose runs the hot passes in roughly half that).
/// * **Multiple cores — sharded gather.** Per-rank cursors make the
///   transpose unshardable, so parallel runs gather instead: each
///   contiguous *rank* range owns a contiguous, disjoint slice of the
///   output CSR and gathers + sorts its own out-lists inside the rayon
///   scope (the shim runs a real `std::thread::scope`), with an
///   in-order concat at the end. The per-list sorts cost
///   `O(Σ d* log d*)` — repaid by the missing second adjacency scan
///   and the parallelism.
pub fn orient_csr_threads(g: &Graph, threads: usize) -> OrientedCsr {
    let degrees = g.degrees();
    let map = RankMap::by_degree(&degrees);
    let ranks = map.ranks();
    let n = g.num_vertices();
    // Clamp to cores actually available: the sharded gather costs
    // `O(Σ d* log d*)` in per-list sorts, repaid only by real
    // parallelism. Requesting more shards than cores (the PR 5
    // `orient_csr/cores_{2,4}` rows, ~95 µs vs 76 µs sequential on the
    // 1-core CI container) just pays the sorts with no overlap — so the
    // shard count never exceeds `available_parallelism`, and oversized
    // requests on a 1-core host take the branchless transpose instead.
    let threads = threads
        .max(1)
        .min(n.max(1) as usize)
        .min(rayon::current_num_threads().max(1));

    // Rank-indexed original degrees double as the load model: scanning
    // rank r costs deg(to_id(r)) neighbour visits.
    let orig_degrees: Vec<u32> = (0..n).map(|r| degrees[map.to_id(r) as usize]).collect();

    let (adj, d_star) = if threads == 1 {
        orient_transpose(g, &map, ranks)
    } else {
        orient_gather_sharded(g, &map, ranks, &orig_degrees, threads)
    };
    let offsets = offsets_from_degrees(&d_star);
    let d_star_max = d_star.iter().copied().max().unwrap_or(0);

    OrientedCsr {
        offsets,
        adj,
        map,
        orig_degrees,
        d_star_max,
    }
}

/// Sequential branchless counting transpose: count pass in id order,
/// scatter pass in ascending target-rank order (out-lists come out
/// sorted by construction). Returns `(adj, d_star)` in rank space.
fn orient_transpose(g: &Graph, map: &RankMap, ranks: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let n = g.num_vertices();

    // Pass 1: oriented out-degree per source rank (sequential scan;
    // each source rank is written exactly once — ranks are a bijection).
    let mut d_star = vec![0u32; n as usize];
    for u in 0..n {
        let ru = ranks[u as usize];
        let mut kept = 0u32;
        for &w in g.neighbors(u) {
            kept += u32::from(ranks[w as usize] > ru);
        }
        d_star[ru as usize] = kept;
    }
    let mut cursor: Vec<u64> = Vec::with_capacity(n as usize);
    let mut acc = 0u64;
    for &d in &d_star {
        cursor.push(acc);
        acc += d as u64;
    }

    // Pass 2: walk target ranks ascending; each kept arc appends its
    // target to the source's bucket, so buckets fill in ascending
    // order. Discarded writes go to the spare slot at `acc` via cmov,
    // keeping the loop branch-free.
    let dummy = acc as usize;
    let mut adj = vec![0u32; acc as usize + 1];
    for rv in 0..n {
        let v = map.to_id(rv);
        for &w in g.neighbors(v) {
            let rw = ranks[w as usize] as usize;
            let keep = (rw as u32) < rv;
            let idx = if keep { cursor[rw] as usize } else { dummy };
            // SAFETY: kept writes target `cursor[rw] < acc` (cursors
            // advance once per kept arc, and pass 1 counted exactly
            // `acc` of them); discarded writes target the spare slot
            // `acc`. The buffer holds `acc + 1` values. (The bounds
            // check is real money here: the loop runs 2|E| times.)
            unsafe { *adj.get_unchecked_mut(idx) = rv };
            cursor[rw] += u64::from(keep);
        }
    }
    adj.truncate(acc as usize);
    (adj, d_star)
}

/// Parallel sharded gather: each contiguous rank range gathers and
/// sorts its own out-lists into its own slice. Returns
/// `(adj, d_star)` in rank space, byte-identical to the transpose.
fn orient_gather_sharded(
    g: &Graph,
    map: &RankMap,
    ranks: &[u32],
    orig_degrees: &[u32],
    threads: usize,
) -> (Vec<u32>, Vec<u32>) {
    let scan_offsets = offsets_from_degrees(orig_degrees);

    // Gather one rank range's sorted out-lists, branchlessly: store
    // every rank image, advance the cursor only for kept ones.
    let build = |(r0, r1): (u32, u32)| -> (Vec<u32>, Vec<u32>) {
        let vol = (scan_offsets[r1 as usize] - scan_offsets[r0 as usize]) as usize;
        let mut adj_part = vec![0u32; vol];
        let mut d_part = Vec::with_capacity((r1 - r0) as usize);
        let mut cur = 0usize;
        for r in r0..r1 {
            let v = map.to_id(r);
            let start = cur;
            for &w in g.neighbors(v) {
                let rw = ranks[w as usize];
                // SAFETY: `cur` counts kept entries, which never exceed
                // the neighbour visits so far; the buffer holds the
                // range's full degree volume, so `cur < vol` whenever a
                // visit remains.
                unsafe { *adj_part.get_unchecked_mut(cur) = rw };
                cur += usize::from(rw > r);
            }
            sort_out_list(&mut adj_part[start..cur]);
            d_part.push((cur - start) as u32);
        }
        adj_part.truncate(cur);
        (adj_part, d_part)
    };

    let parts = vertex_partition(&scan_offsets, threads);
    let built: Vec<(Vec<u32>, Vec<u32>)> = parts.par_iter().map(|&p| build(p)).collect();

    let mut adj = Vec::with_capacity(g.num_edges() as usize);
    let mut d_star = Vec::with_capacity(g.num_vertices() as usize);
    for (adj_part, d_part) in built {
        adj.extend_from_slice(&adj_part);
        d_star.extend_from_slice(&d_part);
    }
    (adj, d_star)
}

/// An oriented graph stored on disk in PDTL format (rank space), plus
/// the in-memory metadata every MGT worker needs: `offsets`, `d*_max`,
/// the rank map for the sink boundary, and the per-vertex out-neighbour
/// bounds driving scan pruning.
#[derive(Debug, Clone)]
pub struct OrientedGraph {
    /// The oriented `.deg`/`.adj` pair (rank order).
    pub disk: DiskGraph,
    /// Oriented CSR offsets (`n + 1`), rank-indexed — the in-memory
    /// degree index of Section IV-A1 (assumes `|V| < PM`, as the paper
    /// does).
    pub offsets: Vec<u64>,
    /// Maximum oriented out-degree, sizes the `nm`/`nmp` scratch arrays.
    pub d_star_max: u32,
    /// The rank ↔ original-id bijection; the sink boundary translates
    /// ranks back through it so listings emit original ids.
    pub map: RankMap,
    /// Per-rank `(min, max)` out-neighbour bounds ([`EMPTY_BOUNDS`] for
    /// empty lists); MGT skips out-lists whose bounds cannot overlap a
    /// chunk's resident window.
    pub bounds: Vec<(u32, u32)>,
    /// Original undirected degrees by rank; present when produced by
    /// [`orient_to_disk`], absent when reopened from disk (only the
    /// master needs them, for load balancing).
    pub orig_degrees: Option<Vec<u32>>,
}

impl OrientedGraph {
    /// `|E*|`.
    pub fn m_star(&self) -> u64 {
        *self.offsets.last().unwrap()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Oriented out-degree of rank `v`.
    pub fn d_star(&self, v: u32) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// Post-orientation in-degrees by rank; requires `orig_degrees`.
    pub fn in_degrees(&self) -> Option<Vec<u32>> {
        let orig = self.orig_degrees.as_ref()?;
        Some(
            (0..self.num_vertices())
                .map(|v| orig[v as usize] - self.d_star(v))
                .collect(),
        )
    }

    /// Path of the rank-map file for `base`.
    pub fn map_path(base: impl AsRef<Path>) -> PathBuf {
        suffixed(base.as_ref(), ".map")
    }

    /// Path of the out-neighbour-bounds file for `base`.
    pub fn bnd_path(base: impl AsRef<Path>) -> PathBuf {
        suffixed(base.as_ref(), ".bnd")
    }

    /// Reopen an oriented graph previously written to `base` (e.g. a
    /// replica copied to another node). Rebuilds offsets and `d*_max`
    /// from the oriented degree file and reloads the rank map and scan
    /// bounds from `base.map` / `base.bnd`.
    ///
    /// ```
    /// use pdtl_core::mgt::{mgt_count_range, MgtOptions};
    /// use pdtl_core::orient::{orient_to_disk, OrientedGraph};
    /// use pdtl_core::sink::CountSink;
    /// use pdtl_core::EdgeRange;
    /// use pdtl_graph::gen::classic::wheel;
    /// use pdtl_graph::DiskGraph;
    /// use pdtl_io::{IoStats, MemoryBudget};
    ///
    /// let dir = std::env::temp_dir().join(format!("pdtl-doc-open-{}", std::process::id()));
    /// std::fs::create_dir_all(&dir).unwrap();
    /// let stats = IoStats::new();
    /// let input = DiskGraph::write(&wheel(12).unwrap(), dir.join("g"), &stats).unwrap();
    /// let (og, _report) = orient_to_disk(&input, dir.join("oriented"), 1, &stats).unwrap();
    ///
    /// // What a cluster node does with its replica: reopen by base path.
    /// let reopened = OrientedGraph::open(dir.join("oriented"), &stats).unwrap();
    /// assert_eq!(reopened.m_star(), og.m_star());
    /// let range = EdgeRange { start: 0, end: reopened.m_star() };
    /// let report = mgt_count_range(
    ///     &reopened, range, MemoryBudget::edges(32), &mut CountSink, stats.clone(),
    /// )
    /// .unwrap();
    /// assert_eq!(report.triangles, 11); // the 11 rim triangles of W_12
    /// # let _ = std::fs::remove_dir_all(&dir);
    /// ```
    pub fn open(base: impl AsRef<Path>, stats: &Arc<IoStats>) -> Result<Self> {
        let base = base.as_ref();
        let disk = DiskGraph::open(base, stats)?;
        let degrees = disk.load_degrees(stats)?;
        let offsets = offsets_from_degrees(&degrees);
        let d_star_max = degrees.iter().copied().max().unwrap_or(0);
        let map = RankMap::read(Self::map_path(base), stats)?;
        if map.len() as usize != degrees.len() {
            return Err(pdtl_io::IoError::malformed(
                Self::map_path(base),
                format!(
                    "rank map covers {} vertices, degree file has {}",
                    map.len(),
                    degrees.len()
                ),
            )
            .into());
        }
        let bounds = read_bounds(&Self::bnd_path(base), degrees.len(), stats)?;
        Ok(Self {
            disk,
            offsets,
            d_star_max,
            map,
            bounds,
            orig_degrees: None,
        })
    }

    /// Replicate the oriented graph to `new_base` (a node's local
    /// disk). Delegates to [`DiskGraph::copy_to`], whose
    /// [`file_set`](DiskGraph::file_set) enumeration ships every file
    /// the base carries — `.deg`, `.adj`, `.map`, `.bnd`, the
    /// compressed-format sidecars when present, and the `.mft`
    /// integrity manifest (copied last, so the replica can verify its
    /// own digests after the copy) — so a new extension cannot
    /// silently be left behind. Returns the bytes copied.
    pub fn replicate_to(&self, new_base: impl AsRef<Path>, stats: &Arc<IoStats>) -> Result<u64> {
        let (_replica, total) = self.disk.copy_to(new_base, stats)?;
        Ok(total)
    }
}

fn suffixed(base: &Path, ext: &str) -> PathBuf {
    let mut os = base.as_os_str().to_os_string();
    os.push(ext);
    PathBuf::from(os)
}

fn read_bounds(path: &Path, n: usize, stats: &Arc<IoStats>) -> Result<Vec<(u32, u32)>> {
    let mut r = U32Reader::open(path, stats.clone())?;
    let flat = r.read_all()?;
    if flat.len() != 2 * n {
        return Err(pdtl_io::IoError::malformed(
            path,
            format!(
                "bounds file holds {} values, expected {}",
                flat.len(),
                2 * n
            ),
        )
        .into());
    }
    Ok(flat.chunks_exact(2).map(|c| (c[0], c[1])).collect())
}

fn write_bounds(path: &Path, bounds: &[(u32, u32)], stats: &Arc<IoStats>) -> Result<()> {
    let mut w = U32Writer::create(path, stats.clone())?;
    for &(lo, hi) in bounds {
        w.write(lo)?;
        w.write(hi)?;
    }
    w.finish()?;
    Ok(())
}

/// Orient `input` (an undirected PDTL-format graph on disk) into the
/// rank-space pair `out_base{.deg,.adj}` (plus `.map`/`.bnd`) using
/// `threads` cores, storing the adjacency under the default codec
/// ([`Codec::default_from_env`], so the `PDTL_CODEC` matrix exercises
/// compression everywhere).
///
/// Returns the oriented graph and a [`PhaseReport`] with the phase's wall
/// time, CPU/I-O split and counted work (this is the quantity Table II
/// and Figure 2 report).
pub fn orient_to_disk(
    input: &DiskGraph,
    out_base: impl AsRef<Path>,
    threads: usize,
    stats: &Arc<IoStats>,
) -> Result<(OrientedGraph, PhaseReport)> {
    orient_to_disk_with(input, out_base, threads, Codec::default_from_env(), stats)
}

/// [`orient_to_disk`] with an explicit adjacency codec.
///
/// Pass 2's scattered positioned writes need fixed per-vertex offsets,
/// which a variable-length encoding cannot offer — so compression runs
/// as a third, sequential pass: the raw rank-space adjacency is
/// re-read in order, encoded per vertex, and atomically replaces the
/// raw file alongside the `.vix` index and `.hdr` header. The extra
/// `O(scan(|E*|))` is paid once at preprocessing time; every multi-pass
/// MGT scan afterwards reads the compressed bytes.
pub fn orient_to_disk_with(
    input: &DiskGraph,
    out_base: impl AsRef<Path>,
    threads: usize,
    codec: Codec,
    stats: &Arc<IoStats>,
) -> Result<(OrientedGraph, PhaseReport)> {
    let threads = threads.max(1);
    let out_base = out_base.as_ref().to_path_buf();
    let timer = CpuIoTimer::start(stats.clone());
    let before = stats.snapshot();

    // Per Section IV-B1 the degree array is read once into memory; the
    // rank permutation is O(|V| log |V|) on it.
    let degrees = input.load_degrees(stats)?;
    let n = degrees.len() as u32;
    let in_offsets = offsets_from_degrees(&degrees);
    let total = *in_offsets.last().unwrap();
    let map = RankMap::by_degree(&degrees);
    let ranks = map.ranks();

    // Contiguous vertex ranges with ~equal adjacency volume per core.
    let parts = vertex_partition(&in_offsets, threads);

    // Pass 1: sequential scan, count each vertex's oriented out-degree
    // (neighbours of larger rank).
    let counted: Vec<Result<Vec<u32>>> = parts
        .par_iter()
        .map(|&(v_begin, v_end)| -> Result<Vec<u32>> {
            let mut reader = input.open_adj(stats)?;
            reader.seek_to(in_offsets[v_begin as usize])?;
            let mut kept = Vec::with_capacity((v_end - v_begin) as usize);
            let mut nbuf: Vec<u32> = Vec::new();
            for u in v_begin..v_end {
                let du = (in_offsets[u as usize + 1] - in_offsets[u as usize]) as usize;
                nbuf.clear();
                reader.read_into(&mut nbuf, du)?;
                let ru = ranks[u as usize];
                kept.push(nbuf.iter().filter(|&&v| ranks[v as usize] > ru).count() as u32);
            }
            Ok(kept)
        })
        .collect();
    let mut d_star_orig = Vec::with_capacity(n as usize);
    for c in counted {
        d_star_orig.extend(c?);
    }
    debug_assert_eq!(d_star_orig.len(), n as usize);

    // Rank-space layout: degree/offset arrays permuted into rank order.
    let d_star_rank: Vec<u32> = (0..n).map(|r| d_star_orig[map.to_id(r) as usize]).collect();
    let rank_offsets = offsets_from_degrees(&d_star_rank);
    let d_star_max = d_star_rank.iter().copied().max().unwrap_or(0);
    let m_star = *rank_offsets.last().unwrap();

    // Oriented degree file (rank order) + the rank map.
    let mut degw = U32Writer::create(suffixed(&out_base, ".deg"), stats.clone())?;
    degw.write_all(&d_star_rank)?;
    degw.finish()?;
    map.write(OrientedGraph::map_path(&out_base), stats)?;

    // Pass 2: sequential scan again; each filtered, rank-mapped, sorted
    // out-list is written directly at its rank-space position in the
    // pre-sized adjacency file (scattered exact-size writes — the price
    // of the permutation, paid once at preprocessing time).
    let adj_p = suffixed(&out_base, ".adj");
    {
        let f = File::create(&adj_p).map_err(|e| pdtl_io::IoError::os("create", &adj_p, e))?;
        f.set_len(m_star * 4)
            .map_err(|e| pdtl_io::IoError::os("truncate", &adj_p, e))?;
    }
    // Per-worker list of (rank, out-neighbour bounds) it wrote.
    type WrittenBounds = Vec<(u32, (u32, u32))>;
    let written: Vec<Result<WrittenBounds>> = parts
        .par_iter()
        .map(|&(v_begin, v_end)| -> Result<WrittenBounds> {
            let mut reader = input.open_adj(stats)?;
            reader.seek_to(in_offsets[v_begin as usize])?;
            let mut out = File::options()
                .write(true)
                .open(&adj_p)
                .map_err(|e| pdtl_io::IoError::os("open", &adj_p, e))?;
            let mut nbuf: Vec<u32> = Vec::new();
            let mut list: Vec<u32> = Vec::new();
            let mut bytes: Vec<u8> = Vec::new();
            let mut seen = Vec::new();
            for u in v_begin..v_end {
                let du = (in_offsets[u as usize + 1] - in_offsets[u as usize]) as usize;
                nbuf.clear();
                reader.read_into(&mut nbuf, du)?;
                let ru = ranks[u as usize];
                list.clear();
                list.extend(
                    nbuf.iter()
                        .map(|&v| ranks[v as usize])
                        .filter(|&rv| rv > ru),
                );
                if list.is_empty() {
                    continue;
                }
                list.sort_unstable();
                seen.push((ru, (list[0], *list.last().unwrap())));
                bytes.clear();
                for &rv in &list {
                    bytes.extend_from_slice(&rv.to_le_bytes());
                }
                out.seek(SeekFrom::Start(rank_offsets[ru as usize] * 4))
                    .map_err(|e| pdtl_io::IoError::os("seek", &adj_p, e))?;
                stats.record_seek();
                let start = Instant::now();
                out.write_all(&bytes)
                    .map_err(|e| pdtl_io::IoError::os("write", &adj_p, e))?;
                stats.record_write(bytes.len() as u64, start.elapsed());
            }
            Ok(seen)
        })
        .collect();

    let mut bounds = vec![EMPTY_BOUNDS; n as usize];
    for w in written {
        for (r, b) in w? {
            bounds[r as usize] = b;
        }
    }
    // The scattered writes went through per-worker handles; one sync
    // here makes the assembled adjacency durable before its digest is
    // recorded in the manifest below.
    File::options()
        .write(true)
        .open(&adj_p)
        .and_then(|f| f.sync_all())
        .map_err(|e| pdtl_io::IoError::os("sync", &adj_p, e))?;
    write_bounds(&OrientedGraph::bnd_path(&out_base), &bounds, stats)?;

    if codec == Codec::DeltaVarint {
        let tmp_p = suffixed(&out_base, ".adj-compress");
        {
            let mut r = U32Reader::open(&adj_p, stats.clone())?;
            let mut w = VarintAdjWriter::create(&tmp_p, stats.clone())?;
            let mut run: Vec<u32> = Vec::new();
            for &d in &d_star_rank {
                run.clear();
                r.read_into(&mut run, d as usize)?;
                w.write_run(&run)?;
            }
            let fenceposts = w.finish()?;
            VarintIndex::store(suffixed(&out_base, ".vix"), &fenceposts, stats.clone())?;
        }
        std::fs::rename(&tmp_p, &adj_p).map_err(|e| pdtl_io::IoError::os("rename", &tmp_p, e))?;
        write_graph_header(&out_base, codec, m_star, stats)?;
    }

    // All data files are durable; committing the manifest last makes it
    // the orientation's crash-safe commit record, and the `open` below
    // immediately re-checks the fresh graph against it.
    Manifest::capture_and_store(&out_base)?;
    let disk = DiskGraph::open(&out_base, stats)?;
    let orig_degrees_rank: Vec<u32> = (0..n).map(|r| degrees[map.to_id(r) as usize]).collect();
    let report = PhaseReport {
        breakdown: timer.finish(),
        io: diff_snapshot(&before, &stats.snapshot()),
        // Each of the 2|E| adjacency entries is examined once per pass.
        cpu_ops: 2 * total + n as u64,
        threads,
    };
    Ok((
        OrientedGraph {
            disk,
            offsets: rank_offsets,
            d_star_max,
            map,
            bounds,
            orig_degrees: Some(orig_degrees_rank),
        },
        report,
    ))
}

/// Sort one gathered out-list. Oriented out-lists are short on average
/// (`|E| / |V|` entries), where `sort_unstable`'s dispatch overhead
/// costs more than the sort itself — inline insertion sort covers the
/// common case, the general sort the heavy tail.
#[inline]
fn sort_out_list(s: &mut [u32]) {
    if s.len() > 24 {
        s.sort_unstable();
        return;
    }
    for i in 1..s.len() {
        let x = s[i];
        let mut j = i;
        while j > 0 && s[j - 1] > x {
            s[j] = s[j - 1];
            j -= 1;
        }
        s[j] = x;
    }
}

/// Split vertices into `parts` contiguous ranges with roughly equal
/// adjacency volume. Returns `(v_begin, v_end)` pairs covering `0..n`.
pub fn vertex_partition(offsets: &[u64], parts: usize) -> Vec<(u32, u32)> {
    let n = (offsets.len() - 1) as u32;
    let total = *offsets.last().unwrap();
    let parts = parts.max(1);
    let mut bounds = Vec::with_capacity(parts);
    let mut begin = 0u32;
    for i in 0..parts {
        let target = total * (i as u64 + 1) / parts as u64;
        let mut end = offsets.partition_point(|&o| o <= target) as u32 - 1;
        end = end.clamp(begin, n);
        if i == parts - 1 {
            end = n;
        }
        bounds.push((begin, end));
        begin = end;
    }
    bounds
}

fn diff_snapshot(
    before: &pdtl_io::stats::IoSnapshot,
    after: &pdtl_io::stats::IoSnapshot,
) -> pdtl_io::stats::IoSnapshot {
    pdtl_io::stats::IoSnapshot {
        bytes_read: after.bytes_read - before.bytes_read,
        bytes_written: after.bytes_written - before.bytes_written,
        read_ops: after.read_ops - before.read_ops,
        write_ops: after.write_ops - before.write_ops,
        seeks: after.seeks - before.seeks,
        io_time: after.io_time.saturating_sub(before.io_time),
        u32s_decoded: after.u32s_decoded - before.u32s_decoded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::DegreeOrder;
    use pdtl_graph::gen::classic::{complete, star, wheel};
    use pdtl_graph::gen::rmat::rmat;

    fn tmpbase(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdtl-orient-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn csr_orientation_preserves_edge_count() {
        for g in [complete(8).unwrap(), wheel(9).unwrap(), rmat(7, 1).unwrap()] {
            let o = orient_csr(&g);
            assert_eq!(o.m_star(), g.num_edges(), "|E*| = |E|");
        }
    }

    #[test]
    fn csr_orientation_is_thread_count_invariant() {
        // The sharded gather must produce bit-identical output for any
        // core count (contiguous rank ranges, in-order concat).
        for (g, tag) in [
            (rmat(8, 2).unwrap(), "rmat"),
            (star(50).unwrap(), "star"),
            (Graph::empty(17), "empty"),
        ] {
            let reference = orient_csr_threads(&g, 1);
            for threads in [2usize, 3, 8, 64] {
                let o = orient_csr_threads(&g, threads);
                assert_eq!(o, reference, "{tag} threads={threads}");
            }
        }
    }

    #[test]
    fn thread_request_is_clamped_to_available_cores() {
        // The PR 5 `orient_csr/cores_{2,4}` regression: sharding past
        // the machine's parallelism pays the gather's per-list sorts
        // with no overlap to repay them. Outside a pool the clamp must
        // bound requests by `current_num_threads`; inside a pool the
        // sharded path must still run (and match the transpose) so a
        // 1-core CI container keeps covering it.
        let g = rmat(8, 7).unwrap();
        let reference = orient_csr_threads(&g, 1);
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(4)
            .build()
            .unwrap();
        let sharded = pool.install(|| orient_csr_threads(&g, 4));
        assert_eq!(sharded, reference, "sharded gather == transpose");

        // And the direct comparison, independent of any clamp: both
        // strategies produce byte-identical CSRs at any shard count.
        let degrees = g.degrees();
        let map = RankMap::by_degree(&degrees);
        let ranks = map.ranks();
        let n = g.num_vertices();
        let orig: Vec<u32> = (0..n).map(|r| degrees[map.to_id(r) as usize]).collect();
        let transposed = orient_transpose(&g, &map, ranks);
        for shards in [2usize, 5, 64] {
            let gathered = orient_gather_sharded(&g, &map, ranks, &orig, shards);
            assert_eq!(gathered, transposed, "shards={shards}");
        }
    }

    #[test]
    fn rank_space_arcs_point_upward() {
        // The rank-space invariant the MGT optimisations rely on: every
        // out-neighbour of v is numerically greater than v.
        let g = rmat(7, 3).unwrap();
        let o = orient_csr(&g);
        for u in 0..o.num_vertices() {
            for &v in o.out(u) {
                assert!(u < v, "rank arcs must ascend: {u} -> {v}");
            }
        }
    }

    #[test]
    fn rank_arcs_match_degree_order_on_original_ids() {
        let g = rmat(7, 3).unwrap();
        let degrees = g.degrees();
        let ord = DegreeOrder::new(&degrees);
        let o = orient_csr(&g);
        for u in 0..o.num_vertices() {
            let iu = o.map.to_id(u);
            for &v in o.out(u) {
                let iv = o.map.to_id(v);
                assert!(ord.precedes(iu, iv), "every arc respects ≺");
                assert!(g.has_edge(iu, iv), "arcs are real edges");
            }
        }
    }

    #[test]
    fn csr_orientation_lists_stay_sorted() {
        let g = rmat(7, 4).unwrap();
        let o = orient_csr(&g);
        for u in 0..o.num_vertices() {
            let out = o.out(u);
            assert!(out.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn rank_degrees_are_nondecreasing() {
        let g = rmat(7, 5).unwrap();
        let o = orient_csr(&g);
        assert!(o.orig_degrees.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn in_degrees_complement_out_degrees() {
        let g = rmat(6, 5).unwrap();
        let o = orient_csr(&g);
        let ins = o.in_degrees();
        for v in 0..o.num_vertices() {
            assert_eq!(
                ins[v as usize] + o.d_star(v),
                o.orig_degrees[v as usize],
                "d = d* + in"
            );
        }
        let total_in: u64 = ins.iter().map(|&x| x as u64).sum();
        assert_eq!(total_in, g.num_edges());
    }

    #[test]
    fn star_orients_towards_hub() {
        // In a star all leaves have degree 1 < hub degree, so every edge
        // points leaf -> hub; in rank space the hub is the last rank.
        let g = star(10).unwrap();
        let o = orient_csr(&g);
        let hub_rank = o.map.to_rank(0);
        assert_eq!(hub_rank, 9, "hub has the highest degree");
        assert_eq!(o.d_star(hub_rank), 0);
        for r in 0..9 {
            assert_eq!(o.d_star(r), 1);
            assert_eq!(o.out(r), &[hub_rank]);
        }
        assert_eq!(o.d_star_max, 1);
    }

    #[test]
    fn disk_orientation_matches_csr() {
        let g = rmat(8, 6).unwrap();
        let stats = IoStats::new();
        let dg = DiskGraph::write(&g, tmpbase("dm-in"), &stats).unwrap();
        for threads in [1usize, 3, 8] {
            let (og, report) =
                orient_to_disk(&dg, tmpbase(&format!("dm-out{threads}")), threads, &stats).unwrap();
            let expect = orient_csr(&g);
            assert_eq!(og.offsets, expect.offsets, "threads={threads}");
            assert_eq!(og.d_star_max, expect.d_star_max);
            assert_eq!(og.map, expect.map);
            let (offsets, adj) = og.disk.load_parts(&stats).unwrap();
            assert_eq!(offsets, expect.offsets);
            assert_eq!(adj, expect.adj);
            assert!(report.cpu_ops > 0);
            assert_eq!(report.threads, threads);
        }
    }

    #[test]
    fn bounds_describe_out_lists() {
        let g = rmat(7, 19).unwrap();
        let stats = IoStats::new();
        let dg = DiskGraph::write(&g, tmpbase("bnd-in"), &stats).unwrap();
        let (og, _) = orient_to_disk(&dg, tmpbase("bnd-out"), 3, &stats).unwrap();
        let expect = orient_csr(&g);
        for r in 0..og.num_vertices() {
            let out = expect.out(r);
            if out.is_empty() {
                assert_eq!(og.bounds[r as usize], EMPTY_BOUNDS);
            } else {
                assert_eq!(og.bounds[r as usize], (out[0], *out.last().unwrap()));
                assert!(og.bounds[r as usize].0 > r, "bounds live above the rank");
            }
        }
    }

    #[test]
    fn disk_orientation_counts_io() {
        let g = rmat(7, 7).unwrap();
        let stats = IoStats::new();
        let dg = DiskGraph::write(&g, tmpbase("io-in"), &stats).unwrap();
        stats.reset();
        let (_og, report) = orient_to_disk(&dg, tmpbase("io-out"), 2, &stats).unwrap();
        // Reads the degree file + two full adjacency scans; writes at
        // least the oriented pair plus the map and bounds.
        assert!(report.io.bytes_read >= dg.size_bytes());
        assert!(report.io.bytes_written >= (g.num_edges() + g.num_vertices() as u64) * 4);
    }

    #[test]
    fn reopen_from_disk_recovers_metadata() {
        let g = rmat(6, 8).unwrap();
        let stats = IoStats::new();
        let dg = DiskGraph::write(&g, tmpbase("ro-in"), &stats).unwrap();
        let base = tmpbase("ro-out");
        let (og, _) = orient_to_disk(&dg, &base, 2, &stats).unwrap();
        let reopened = OrientedGraph::open(&base, &stats).unwrap();
        assert_eq!(reopened.offsets, og.offsets);
        assert_eq!(reopened.d_star_max, og.d_star_max);
        assert_eq!(reopened.map, og.map);
        assert_eq!(reopened.bounds, og.bounds);
        assert!(reopened.orig_degrees.is_none());
        assert!(reopened.in_degrees().is_none());
    }

    #[test]
    fn replicate_ships_map_and_bounds() {
        let g = rmat(6, 9).unwrap();
        let stats = IoStats::new();
        let dg = DiskGraph::write(&g, tmpbase("rep-in"), &stats).unwrap();
        let (og, _) = orient_to_disk(&dg, tmpbase("rep-out"), 2, &stats).unwrap();
        let replica_base = tmpbase("rep-copy");
        let bytes = og.replicate_to(&replica_base, &stats).unwrap();
        let n = g.num_vertices() as u64;
        let mft = std::fs::metadata(og.disk.mft_path()).unwrap().len();
        assert_eq!(bytes, og.disk.size_bytes() + n * 4 + 2 * n * 4 + mft);
        let replica = OrientedGraph::open(&replica_base, &stats).unwrap();
        assert_eq!(replica.offsets, og.offsets);
        assert_eq!(replica.map, og.map);
        assert_eq!(replica.bounds, og.bounds);
    }

    #[test]
    fn compressed_orientation_matches_raw_and_shrinks_adjacency() {
        let g = rmat(8, 13).unwrap();
        let stats = IoStats::new();
        let dg = DiskGraph::write(&g, tmpbase("vc-in"), &stats).unwrap();
        let (raw, _) = orient_to_disk_with(&dg, tmpbase("vc-raw"), 2, Codec::Raw, &stats).unwrap();
        let (vc, _) =
            orient_to_disk_with(&dg, tmpbase("vc-var"), 2, Codec::DeltaVarint, &stats).unwrap();
        assert_eq!(vc.offsets, raw.offsets);
        assert_eq!(vc.bounds, raw.bounds);
        assert_eq!(vc.disk.codec(), Codec::DeltaVarint);
        assert_eq!(
            vc.disk.adj_len(),
            raw.disk.adj_len(),
            "decoded lengths agree"
        );

        let (_, adj_raw) = raw.disk.load_parts(&stats).unwrap();
        let (_, adj_vc) = vc.disk.load_parts(&stats).unwrap();
        assert_eq!(adj_vc, adj_raw, "decoding inverts the recompress pass");

        let raw_bytes = std::fs::metadata(raw.disk.adj_path()).unwrap().len();
        let vc_bytes = std::fs::metadata(vc.disk.adj_path()).unwrap().len();
        assert!(
            vc_bytes * 2 < raw_bytes,
            "rank-space runs must compress at least 2x: {vc_bytes} vs {raw_bytes}"
        );

        // Replication ships the sidecars; the replica decodes identically.
        let rep = tmpbase("vc-rep");
        vc.replicate_to(&rep, &stats).unwrap();
        let reopened = OrientedGraph::open(&rep, &stats).unwrap();
        assert_eq!(reopened.disk.codec(), Codec::DeltaVarint);
        assert_eq!(reopened.disk.load_parts(&stats).unwrap().1, adj_raw);
    }

    #[test]
    fn vertex_partition_covers_and_is_contiguous() {
        let g = rmat(7, 9).unwrap();
        let o = orient_csr(&g);
        for parts in [1usize, 2, 5, 16] {
            let bounds = vertex_partition(&o.offsets, parts);
            assert_eq!(bounds.len(), parts);
            assert_eq!(bounds[0].0, 0);
            assert_eq!(bounds[parts - 1].1, o.num_vertices());
            for w in bounds.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
        }
    }

    #[test]
    fn vertex_partition_balances_volume() {
        let g = rmat(9, 10).unwrap();
        let deg = g.degrees();
        let offsets = offsets_from_degrees(&deg);
        let bounds = vertex_partition(&offsets, 4);
        let total = *offsets.last().unwrap() as f64;
        for &(b, e) in &bounds {
            let vol = (offsets[e as usize] - offsets[b as usize]) as f64;
            assert!(
                vol < 0.5 * total,
                "one part holds {vol} of {total}: too imbalanced"
            );
        }
    }

    #[test]
    fn empty_graph_orients() {
        let g = Graph::empty(10);
        let stats = IoStats::new();
        let dg = DiskGraph::write(&g, tmpbase("empty-in"), &stats).unwrap();
        let (og, _) = orient_to_disk(&dg, tmpbase("empty-out"), 2, &stats).unwrap();
        assert_eq!(og.m_star(), 0);
        assert_eq!(og.d_star_max, 0);
        assert!(og.bounds.iter().all(|&b| b == EMPTY_BOUNDS));
    }
}
