//! Degree-based orientation (sequential and multicore).
//!
//! Orientation rewrites the bidirectional input into `G* = (V, E*)` where
//! `(u, v) ∈ E*` iff `{u, v} ∈ E` and `u ≺ v` under the degree order.
//! Filtering each (sorted) adjacency list preserves its sortedness, so
//! the output is again a valid PDTL-format graph — with exactly `|E|`
//! directed edges.
//!
//! The multicore path follows Section IV-B1: *"the master reads the
//! entire degree array into memory (provided |V| < PM), and each core
//! performs the orientation on a contiguous set of edges, which are then
//! concatenated."* Here each worker filters a contiguous vertex range of
//! the adjacency file into a temporary shard; the master concatenates the
//! shards and writes the oriented degree file. Orientation costs
//! `O(scan(|E|))` I/Os and `O(|E|)` CPU (Theorem IV.2).

use std::path::{Path, PathBuf};
use std::sync::Arc;

use pdtl_graph::disk::offsets_from_degrees;
use pdtl_graph::{DiskGraph, Graph};
use pdtl_io::{CpuIoTimer, IoStats, U32Reader, U32Writer};
use rayon::prelude::*;

use crate::error::Result;
use crate::metrics::PhaseReport;
use crate::order::DegreeOrder;

/// An oriented graph held in memory (used by baselines and the
/// in-memory MGT variant).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrientedCsr {
    /// Oriented CSR offsets (`n + 1`).
    pub offsets: Vec<u64>,
    /// Oriented adjacency (out-neighbours, sorted by id).
    pub adj: Vec<u32>,
    /// Original (undirected) degrees.
    pub orig_degrees: Vec<u32>,
    /// Maximum oriented out-degree `d*_max`.
    pub d_star_max: u32,
}

impl OrientedCsr {
    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// `|E*| = |E|`.
    pub fn m_star(&self) -> u64 {
        *self.offsets.last().unwrap()
    }

    /// Oriented out-degree of `v`.
    pub fn d_star(&self, v: u32) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// Oriented out-neighbours of `v`.
    pub fn out(&self, v: u32) -> &[u32] {
        &self.adj[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Post-orientation in-degrees `d(v) - d*(v)` — the load-balancing
    /// weights of Section IV-B1.
    pub fn in_degrees(&self) -> Vec<u32> {
        (0..self.num_vertices())
            .map(|v| self.orig_degrees[v as usize] - self.d_star(v))
            .collect()
    }
}

/// Orient an in-memory graph.
pub fn orient_csr(g: &Graph) -> OrientedCsr {
    let degrees = g.degrees();
    let ord = DegreeOrder::new(&degrees);
    let n = g.num_vertices();
    let mut offsets = Vec::with_capacity(n as usize + 1);
    offsets.push(0u64);
    let mut adj = Vec::with_capacity(g.num_edges() as usize);
    let mut d_star_max = 0u32;
    for u in 0..n {
        let before = adj.len();
        adj.extend(
            g.neighbors(u)
                .iter()
                .copied()
                .filter(|&v| ord.precedes(u, v)),
        );
        let d = (adj.len() - before) as u32;
        d_star_max = d_star_max.max(d);
        offsets.push(adj.len() as u64);
    }
    OrientedCsr {
        offsets,
        adj,
        orig_degrees: degrees,
        d_star_max,
    }
}

/// An oriented graph stored on disk in PDTL format, plus the in-memory
/// metadata every MGT worker needs (`offsets`, `d*_max`).
#[derive(Debug, Clone)]
pub struct OrientedGraph {
    /// The oriented `.deg`/`.adj` pair.
    pub disk: DiskGraph,
    /// Oriented CSR offsets (`n + 1`), the in-memory degree index of
    /// Section IV-A1 (assumes `|V| < PM`, as the paper does).
    pub offsets: Vec<u64>,
    /// Maximum oriented out-degree, sizes the `nm`/`nmp` scratch arrays.
    pub d_star_max: u32,
    /// Original undirected degrees; present when produced by
    /// [`orient_to_disk`], absent when reopened from disk (only the
    /// master needs them, for load balancing).
    pub orig_degrees: Option<Vec<u32>>,
}

impl OrientedGraph {
    /// `|E*|`.
    pub fn m_star(&self) -> u64 {
        *self.offsets.last().unwrap()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u32 {
        (self.offsets.len() - 1) as u32
    }

    /// Oriented out-degree of `v`.
    pub fn d_star(&self, v: u32) -> u32 {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as u32
    }

    /// Post-orientation in-degrees; requires `orig_degrees`.
    pub fn in_degrees(&self) -> Option<Vec<u32>> {
        let orig = self.orig_degrees.as_ref()?;
        Some(
            (0..self.num_vertices())
                .map(|v| orig[v as usize] - self.d_star(v))
                .collect(),
        )
    }

    /// Reopen an oriented graph previously written to `base` (e.g. a
    /// replica copied to another node). Rebuilds offsets and `d*_max`
    /// from the oriented degree file.
    pub fn open(base: impl AsRef<Path>, stats: &Arc<IoStats>) -> Result<Self> {
        let disk = DiskGraph::open(base, stats)?;
        let degrees = disk.load_degrees(stats)?;
        let offsets = offsets_from_degrees(&degrees);
        let d_star_max = degrees.iter().copied().max().unwrap_or(0);
        Ok(Self {
            disk,
            offsets,
            d_star_max,
            orig_degrees: None,
        })
    }
}

/// Orient `input` (an undirected PDTL-format graph on disk) into
/// `out_base{.deg,.adj}` using `threads` cores.
///
/// Returns the oriented graph and a [`PhaseReport`] with the phase's wall
/// time, CPU/I-O split and counted work (this is the quantity Table II
/// and Figure 2 report).
pub fn orient_to_disk(
    input: &DiskGraph,
    out_base: impl AsRef<Path>,
    threads: usize,
    stats: &Arc<IoStats>,
) -> Result<(OrientedGraph, PhaseReport)> {
    let threads = threads.max(1);
    let out_base = out_base.as_ref().to_path_buf();
    let timer = CpuIoTimer::start(stats.clone());
    let before = stats.snapshot();

    // Per Section IV-B1 the degree array is read once into memory.
    let degrees = input.load_degrees(stats)?;
    let n = degrees.len() as u32;
    let offsets = offsets_from_degrees(&degrees);
    let total = *offsets.last().unwrap();

    // Contiguous vertex ranges with ~equal adjacency volume per core.
    let bounds = vertex_partition(&offsets, threads);

    struct Shard {
        path: PathBuf,
        d_star: Vec<u32>,
        d_star_max: u32,
        written: u64,
    }

    let shards: Vec<Result<Shard>> = bounds
        .par_iter()
        .enumerate()
        .map(|(i, &(v_begin, v_end))| -> Result<Shard> {
            let ord = DegreeOrder::new(&degrees);
            let mut shard_path = out_base.as_os_str().to_os_string();
            shard_path.push(format!(".shard{i}"));
            let shard_path = PathBuf::from(shard_path);
            let mut reader = input.open_adj(stats)?;
            reader.seek_to(offsets[v_begin as usize])?;
            let mut writer = U32Writer::create(&shard_path, stats.clone())?;
            let mut d_star = Vec::with_capacity((v_end - v_begin) as usize);
            let mut d_star_max = 0u32;
            let mut nbuf: Vec<u32> = Vec::new();
            for u in v_begin..v_end {
                let du = (offsets[u as usize + 1] - offsets[u as usize]) as usize;
                nbuf.clear();
                reader.read_into(&mut nbuf, du)?;
                let mut kept = 0u32;
                for &v in &nbuf {
                    if ord.precedes(u, v) {
                        writer.write(v)?;
                        kept += 1;
                    }
                }
                d_star_max = d_star_max.max(kept);
                d_star.push(kept);
            }
            let written = writer.finish()?;
            Ok(Shard {
                path: shard_path,
                d_star,
                d_star_max,
                written,
            })
        })
        .collect();

    // Assemble: oriented degree file + concatenated adjacency shards.
    let mut d_star_all = Vec::with_capacity(n as usize);
    let mut d_star_max = 0u32;
    let mut shard_list = Vec::with_capacity(shards.len());
    for s in shards {
        let s = s?;
        d_star_all.extend_from_slice(&s.d_star);
        d_star_max = d_star_max.max(s.d_star_max);
        shard_list.push(s);
    }
    debug_assert_eq!(d_star_all.len(), n as usize);

    let mut deg_path = out_base.as_os_str().to_os_string();
    deg_path.push(".deg");
    let mut degw = U32Writer::create(PathBuf::from(deg_path), stats.clone())?;
    degw.write_all(&d_star_all)?;
    degw.finish()?;

    let mut adj_path = out_base.as_os_str().to_os_string();
    adj_path.push(".adj");
    let mut adjw = U32Writer::create(PathBuf::from(adj_path), stats.clone())?;
    let mut buf: Vec<u32> = Vec::new();
    for s in &shard_list {
        let mut r = U32Reader::open(&s.path, stats.clone())?;
        let mut remaining = s.written as usize;
        while remaining > 0 {
            buf.clear();
            let take = remaining.min(16 * 1024);
            let got = r.read_into(&mut buf, take)?;
            adjw.write_all(&buf)?;
            remaining -= got;
        }
        std::fs::remove_file(&s.path).map_err(|e| pdtl_io::IoError::os("remove", &s.path, e))?;
    }
    adjw.finish()?;

    let disk = DiskGraph::open(&out_base, stats)?;
    let oriented_offsets = offsets_from_degrees(&d_star_all);
    let report = PhaseReport {
        breakdown: timer.finish(),
        io: diff_snapshot(&before, &stats.snapshot()),
        // Each of the 2|E| adjacency entries is examined exactly once.
        cpu_ops: total + n as u64,
        threads,
    };
    Ok((
        OrientedGraph {
            disk,
            offsets: oriented_offsets,
            d_star_max,
            orig_degrees: Some(degrees),
        },
        report,
    ))
}

/// Split vertices into `parts` contiguous ranges with roughly equal
/// adjacency volume. Returns `(v_begin, v_end)` pairs covering `0..n`.
pub fn vertex_partition(offsets: &[u64], parts: usize) -> Vec<(u32, u32)> {
    let n = (offsets.len() - 1) as u32;
    let total = *offsets.last().unwrap();
    let parts = parts.max(1);
    let mut bounds = Vec::with_capacity(parts);
    let mut begin = 0u32;
    for i in 0..parts {
        let target = total * (i as u64 + 1) / parts as u64;
        let mut end = offsets.partition_point(|&o| o <= target) as u32 - 1;
        end = end.clamp(begin, n);
        if i == parts - 1 {
            end = n;
        }
        bounds.push((begin, end));
        begin = end;
    }
    bounds
}

fn diff_snapshot(
    before: &pdtl_io::stats::IoSnapshot,
    after: &pdtl_io::stats::IoSnapshot,
) -> pdtl_io::stats::IoSnapshot {
    pdtl_io::stats::IoSnapshot {
        bytes_read: after.bytes_read - before.bytes_read,
        bytes_written: after.bytes_written - before.bytes_written,
        read_ops: after.read_ops - before.read_ops,
        write_ops: after.write_ops - before.write_ops,
        seeks: after.seeks - before.seeks,
        io_time: after.io_time.saturating_sub(before.io_time),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdtl_graph::gen::classic::{complete, star, wheel};
    use pdtl_graph::gen::rmat::rmat;

    fn tmpbase(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdtl-orient-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    #[test]
    fn csr_orientation_preserves_edge_count() {
        for g in [complete(8).unwrap(), wheel(9).unwrap(), rmat(7, 1).unwrap()] {
            let o = orient_csr(&g);
            assert_eq!(o.m_star(), g.num_edges(), "|E*| = |E|");
        }
    }

    #[test]
    fn csr_orientation_is_a_dag_under_order() {
        let g = rmat(7, 3).unwrap();
        let o = orient_csr(&g);
        let ord = DegreeOrder::new(&o.orig_degrees);
        for u in 0..o.num_vertices() {
            for &v in o.out(u) {
                assert!(ord.precedes(u, v), "every arc respects ≺");
            }
        }
    }

    #[test]
    fn csr_orientation_lists_stay_sorted() {
        let g = rmat(7, 4).unwrap();
        let o = orient_csr(&g);
        for u in 0..o.num_vertices() {
            let out = o.out(u);
            assert!(out.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn in_degrees_complement_out_degrees() {
        let g = rmat(6, 5).unwrap();
        let o = orient_csr(&g);
        let ins = o.in_degrees();
        for v in 0..o.num_vertices() {
            assert_eq!(
                ins[v as usize] + o.d_star(v),
                o.orig_degrees[v as usize],
                "d = d* + in"
            );
        }
        let total_in: u64 = ins.iter().map(|&x| x as u64).sum();
        assert_eq!(total_in, g.num_edges());
    }

    #[test]
    fn star_orients_towards_hub() {
        // In a star all leaves have degree 1 < hub degree, so every edge
        // points leaf -> hub and the hub has d* = 0.
        let g = star(10).unwrap();
        let o = orient_csr(&g);
        assert_eq!(o.d_star(0), 0);
        for v in 1..10 {
            assert_eq!(o.d_star(v), 1);
        }
        assert_eq!(o.d_star_max, 1);
    }

    #[test]
    fn disk_orientation_matches_csr() {
        let g = rmat(8, 6).unwrap();
        let stats = IoStats::new();
        let dg = DiskGraph::write(&g, tmpbase("dm-in"), &stats).unwrap();
        for threads in [1usize, 3, 8] {
            let (og, report) =
                orient_to_disk(&dg, tmpbase(&format!("dm-out{threads}")), threads, &stats).unwrap();
            let expect = orient_csr(&g);
            assert_eq!(og.offsets, expect.offsets, "threads={threads}");
            assert_eq!(og.d_star_max, expect.d_star_max);
            let (offsets, adj) = og.disk.load_parts(&stats).unwrap();
            assert_eq!(offsets, expect.offsets);
            assert_eq!(adj, expect.adj);
            assert!(report.cpu_ops > 0);
            assert_eq!(report.threads, threads);
        }
    }

    #[test]
    fn disk_orientation_counts_io() {
        let g = rmat(7, 7).unwrap();
        let stats = IoStats::new();
        let dg = DiskGraph::write(&g, tmpbase("io-in"), &stats).unwrap();
        stats.reset();
        let (_og, report) = orient_to_disk(&dg, tmpbase("io-out"), 2, &stats).unwrap();
        // Reads at least the degree file + full adjacency; writes at
        // least the oriented pair (+ shards).
        assert!(report.io.bytes_read >= dg.size_bytes());
        assert!(report.io.bytes_written >= (g.num_edges() + g.num_vertices() as u64) * 4);
    }

    #[test]
    fn reopen_from_disk_recovers_metadata() {
        let g = rmat(6, 8).unwrap();
        let stats = IoStats::new();
        let dg = DiskGraph::write(&g, tmpbase("ro-in"), &stats).unwrap();
        let base = tmpbase("ro-out");
        let (og, _) = orient_to_disk(&dg, &base, 2, &stats).unwrap();
        let reopened = OrientedGraph::open(&base, &stats).unwrap();
        assert_eq!(reopened.offsets, og.offsets);
        assert_eq!(reopened.d_star_max, og.d_star_max);
        assert!(reopened.orig_degrees.is_none());
        assert!(reopened.in_degrees().is_none());
    }

    #[test]
    fn vertex_partition_covers_and_is_contiguous() {
        let g = rmat(7, 9).unwrap();
        let o = orient_csr(&g);
        for parts in [1usize, 2, 5, 16] {
            let bounds = vertex_partition(&o.offsets, parts);
            assert_eq!(bounds.len(), parts);
            assert_eq!(bounds[0].0, 0);
            assert_eq!(bounds[parts - 1].1, o.num_vertices());
            for w in bounds.windows(2) {
                assert_eq!(w[0].1, w[1].0, "contiguous");
            }
        }
    }

    #[test]
    fn vertex_partition_balances_volume() {
        let g = rmat(9, 10).unwrap();
        let deg = g.degrees();
        let offsets = offsets_from_degrees(&deg);
        let bounds = vertex_partition(&offsets, 4);
        let total = *offsets.last().unwrap() as f64;
        for &(b, e) in &bounds {
            let vol = (offsets[e as usize] - offsets[b as usize]) as f64;
            assert!(
                vol < 0.5 * total,
                "one part holds {vol} of {total}: too imbalanced"
            );
        }
    }

    #[test]
    fn empty_graph_orients() {
        let g = Graph::empty(10);
        let stats = IoStats::new();
        let dg = DiskGraph::write(&g, tmpbase("empty-in"), &stats).unwrap();
        let (og, _) = orient_to_disk(&dg, tmpbase("empty-out"), 2, &stats).unwrap();
        assert_eq!(og.m_star(), 0);
        assert_eq!(og.d_star_max, 0);
    }
}
