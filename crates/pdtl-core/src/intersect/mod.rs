//! Sorted-array intersection kernels.
//!
//! The inner loop of the modified MGT: reporting `N(u) ∩ E_v` for each
//! `v ∈ N⁺(u)`. The paper's key implementation finding (§IV-A1) is that
//! sorted arrays beat any hash structure by more than 10× here, so these
//! kernels are plain merges over sorted `u32` slices.
//!
//! * [`intersect_visit`] — two-pointer merge, `O(|a| + |b|)`, with two
//!   forms picked by length ratio: near-equal lengths take the classic
//!   three-way branch (one comparison per step — on interleaved inputs
//!   the advance-loop form's extra frontier re-tests cost ~50%, the
//!   PR 2 `1000x1000` regression), while skewed lengths take the
//!   advance-loop form (each loop catches one cursor up to the other's
//!   frontier with a single comparison per step — it wins when one side
//!   produces long runs, which is what skewed lengths guarantee). The
//!   fully branchless cmov form was also measured and loses everywhere
//!   (serial dependency chain).
//! * [`intersect_gallop_visit`] — galloping (exponential search) from the
//!   smaller side, `O(|a| log(|b|/|a|))`; wins when sizes are lopsided,
//!   which happens constantly on scale-free graphs (a hub's list against
//!   a leaf's). The ablation bench quantifies the crossover.
//! * [`intersect_adaptive_visit`] — picks between the two by size ratio;
//!   this is what the engine uses.
//!
//! Each kernel has a `*_counted` variant returning `(matches,
//! comparisons)`, where comparisons are the *actual* element comparisons
//! performed — `O(s log(l/s))` for galloping, not `s + l` — so
//! `WorkerReport::cpu_ops` reflects the work really done.
//!
//! # The SIMD tier
//!
//! On x86_64 each ratio tier additionally has `std::arch` kernels
//! (the private `x86` submodule): an SSE2/AVX2 rotate-and-compare
//! block merge for
//! interleaved shapes, vectorized advance loops for skewed shapes, and
//! a vector-probed gallop for lopsided shapes. The level is detected at
//! runtime ([`SimdLevel::detect`], cached by [`simd_level`]) with the
//! [`PDTL_SIMD`](SIMD_ENV) env var as the kill-switch/ablation knob,
//! mirroring `PDTL_IO_BACKEND`. Two contracts make the tier invisible
//! to everything downstream:
//!
//! 1. **Semantics** — every SIMD kernel visits exactly the scalar
//!    kernel's matches, in the same ascending order.
//! 2. **Accounting** — the `*_counted` variants report the comparison
//!    count *the scalar kernel of the same ratio tier would have
//!    performed*, derived from scalar-identical cursor state or probe
//!    replay after the fact (the merges' `i + j - matches`,
//!    `scalar::gallop_probe_cost`) — no
//!    counter runs in any vector loop. `WorkerReport::cpu_ops`, the
//!    arboricity bound tests and the crossover ablations are therefore
//!    bit-identical across `PDTL_SIMD` levels; only wall time moves.
//!
//! Ratio-tier boundaries (`ADVANCE_RATIO`, `GALLOP_RATIO`) are
//! shared by every level for the same reason: the level selects an
//! implementation *within* a tier, never a different tier.
//!
//! The kernels require strictly increasing (duplicate-free) inputs —
//! true for every adjacency list in the pipeline, enforced upstream by
//! the graph builders and property-tested in `simd_parity.rs`.

mod scalar;
#[cfg(target_arch = "x86_64")]
mod x86;

use std::sync::OnceLock;

/// Size ratio beyond which galloping beats the linear merge. Justified
/// by the `gallop_crossover` ablation bench, which sweeps ratios 1–10⁴
/// into a 100k-element set *and* measures the three kernel-bench shapes
/// directly (this container, min/iter): ratio 1 (`1000x1000`) linear
/// 1.2 µs vs gallop 3.4 µs — linear wins 3×; ratio 10 (10k into 100k)
/// break-even; ratio 100 (`100x10000`) linear 5.8 µs vs gallop 1.3 µs;
/// ratio 10⁴ (`10x100000`) linear 41 µs vs gallop 0.24 µs. The
/// crossover sits just above 10, so gallop whenever the ratio
/// exceeds 12. Re-measured under the AVX2 tier (PR 6): the block-skip
/// advance loops move the vector crossover up — at ratio 100 they now
/// edge out gallop (15.0 vs 17.4 µs) and at ratio 10 the two are at
/// parity (84 vs 81 µs) — while the scalar sweep still flips hard at
/// ratio 100 (advance 57 µs vs gallop 17 µs). The boundary is shared
/// across levels (that sharing keeps `cpu_ops` level-invariant), and
/// 12 stays the right compromise: it trades a ~15% AVX2 loss on
/// ratio-100 shapes for the scalar path's 3.3× win there, and every
/// other (level, ratio) cell agrees with it.
const GALLOP_RATIO: usize = 12;

/// Size ratio beyond which the advance-loop merge beats the three-way
/// interleaved merge (both linear). Below it, inputs interleave tightly
/// and the advance loops' per-frontier re-test adds ~50% comparisons
/// (the PR 2 `1000x1000` regression, 1.33 → 2.01 µs); above it, one
/// side produces multi-element runs and the single-comparison advance
/// steps beat the three-way branch (`100x10000` 10.4 → 6.2 µs in PR 2).
/// Any threshold in (1, 10] separates the bench shapes; 4 leaves margin
/// on both sides. The SIMD tier widens the gap in both directions (the
/// block merge wins interleaved shapes, the vectorized advance loops
/// win skewed ones) without moving the crossover, so the constant is
/// shared by every `PDTL_SIMD` level — which is also what keeps
/// `cpu_ops` level-invariant per shape.
const ADVANCE_RATIO: usize = 4;

/// Minimum `min(|a|, |b|)` for the SSE2 block merge (one 4-lane block).
#[cfg(target_arch = "x86_64")]
const MERGE_SSE2_MIN: usize = 4;
/// Minimum `max(|a|, |b|)` before the block-skipping advance loops pay
/// for their setup; tiny lists stay scalar.
#[cfg(target_arch = "x86_64")]
const SIMD_SKEW_MIN: usize = 16;
/// Minimum `max(|a|, |b|)` for the vector-probed gallop. Much higher
/// than [`SIMD_SKEW_MIN`]: on a large side below a few cache lines the
/// scalar probes are all L1 hits and the per-element window compare is
/// pure overhead (measured 1.2× slower on the gallop-tier shapes the
/// in-memory MGT workload issues, `l` ≈ 16–32).
#[cfg(target_arch = "x86_64")]
const GALLOP_SIMD_MIN: usize = 128;

/// Environment variable overriding the detected SIMD level
/// (`off` | `sse2` | `avx2` | `auto`, case-insensitive). The
/// kill-switch and ablation knob for the vectorized kernels, mirroring
/// `PDTL_IO_BACKEND`: `off` forces the scalar kernels everywhere,
/// `sse2`/`avx2` cap the level (never exceeding what the host supports),
/// `auto` (or unset, or unrecognised) uses [`SimdLevel::detect`]. Read
/// once, on first kernel use, and cached for the process ([`simd_level`]).
pub const SIMD_ENV: &str = "PDTL_SIMD";

/// Which intersection-kernel implementation tier runs: scalar
/// everywhere, or one of the x86_64 vector levels.
///
/// Levels are ordered (`Off < Sse2 < Avx2`), so capping a requested
/// level at what the host supports is [`min`](Ord::min) — which is what
/// [`resolve`](Self::resolve) does:
///
/// ```
/// use pdtl_core::intersect::SimdLevel;
///
/// // Every level's canonical name parses back to itself…
/// for l in SimdLevel::ALL {
///     assert_eq!(SimdLevel::parse(l.name()), Some(l));
/// }
/// // …case-insensitively.
/// assert_eq!(SimdLevel::parse("AVX2"), Some(SimdLevel::Avx2));
///
/// // `resolve` never yields a level this host cannot run:
/// assert!(SimdLevel::Avx2.resolve() <= SimdLevel::detect());
/// assert_eq!(SimdLevel::Off.resolve(), SimdLevel::Off);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SimdLevel {
    /// Scalar kernels only (the portable fallback and the ablation
    /// baseline; `PDTL_SIMD=off`).
    Off,
    /// 4-lane `std::arch` kernels (baseline on every x86_64).
    Sse2,
    /// 8-lane `std::arch` kernels (requires runtime-detected AVX2).
    Avx2,
}

impl SimdLevel {
    /// Every level, lowest to highest.
    pub const ALL: [SimdLevel; 3] = [SimdLevel::Off, SimdLevel::Sse2, SimdLevel::Avx2];

    /// Stable lowercase name (bench row / log / env spelling).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Off => "off",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }

    /// Parse a level name, case-insensitively. `scalar` is accepted as
    /// an alias for `off`. `auto` is *not* a level — callers wanting
    /// the `auto` semantics use [`SimdLevel::from_env`].
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "off" | "scalar" => Some(SimdLevel::Off),
            "sse2" => Some(SimdLevel::Sse2),
            "avx2" => Some(SimdLevel::Avx2),
            _ => None,
        }
    }

    /// The best level the running host supports: [`Avx2`](Self::Avx2)
    /// where runtime detection finds it, otherwise [`Sse2`](Self::Sse2)
    /// on x86_64 (architecturally guaranteed), otherwise
    /// [`Off`](Self::Off).
    pub fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                SimdLevel::Avx2
            } else {
                SimdLevel::Sse2
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            SimdLevel::Off
        }
    }

    /// The level requested by [`SIMD_ENV`]: an explicit level capped at
    /// what the host supports, or [`detect`](Self::detect) when the
    /// variable is unset, `auto`, or unrecognised.
    pub fn from_env() -> Self {
        match std::env::var(SIMD_ENV) {
            Ok(v) => SimdLevel::parse(&v).map_or_else(SimdLevel::detect, SimdLevel::resolve),
            Err(_) => SimdLevel::detect(),
        }
    }

    /// Cap this level at what the running host can execute — requesting
    /// `avx2` on an SSE2-only host yields `sse2`, never an illegal
    /// instruction.
    pub fn resolve(self) -> Self {
        self.min(Self::detect())
    }
}

impl std::fmt::Display for SimdLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The process-wide SIMD level every plain (non-`_with`) kernel entry
/// point dispatches on: [`SimdLevel::from_env`], resolved once on first
/// use and cached.
///
/// ```
/// use pdtl_core::intersect::{simd_level, SimdLevel};
/// assert!(simd_level() <= SimdLevel::detect());
/// ```
pub fn simd_level() -> SimdLevel {
    static LEVEL: OnceLock<SimdLevel> = OnceLock::new();
    *LEVEL.get_or_init(SimdLevel::from_env)
}

/// `(min, max)` of the two slice lengths — the shape every dispatch
/// tier keys on. One definition, three dispatch sites (merge-form
/// choice, gallop choice, SIMD gates), so the tiers cannot disagree on
/// what "the ratio" means.
#[inline]
fn ordered_lens(a: &[u32], b: &[u32]) -> (usize, usize) {
    if a.len() <= b.len() {
        (a.len(), b.len())
    } else {
        (b.len(), a.len())
    }
}

/// Visit every element of `a ∩ b` in ascending order. Returns the count.
#[inline]
pub fn intersect_visit(a: &[u32], b: &[u32], visit: impl FnMut(u32)) -> u64 {
    intersect_visit_counted(a, b, visit).0
}

/// Merge intersection returning `(matches, comparisons)`.
///
/// Dispatches on length ratio: tightly interleaved (near-equal-length)
/// inputs take the branch-predictable three-way merge, skewed inputs
/// take the advance-loop merge (see `ADVANCE_RATIO`). Both are
/// `O(|a| + |b|)` with at most `2(|a| + |b|)` counted comparisons and
/// produce identical output (property-tested). Runs the vectorized
/// kernel of the ambient [`simd_level`] when one applies.
#[inline]
pub fn intersect_visit_counted(a: &[u32], b: &[u32], visit: impl FnMut(u32)) -> (u64, u64) {
    intersect_visit_counted_with(simd_level(), a, b, visit)
}

/// [`intersect_visit_counted`] at an explicit [`SimdLevel`] — the
/// ablation entry point (`level` is capped at the host's capability by
/// the kernels' gates, so any level is safe to request on any host).
///
/// The level changes wall time only, never the returned pair or the
/// visit sequence:
///
/// ```
/// use pdtl_core::intersect::{intersect_visit_counted_with, SimdLevel};
///
/// let a: Vec<u32> = (0..64).collect();
/// let b: Vec<u32> = (0..64).map(|x| x * 2).collect();
/// let mut out = Vec::new();
/// let scalar = intersect_visit_counted_with(SimdLevel::Off, &a, &b, |x| out.push(x));
/// assert_eq!(out.len() as u64, scalar.0);
/// for level in SimdLevel::ALL {
///     assert_eq!(intersect_visit_counted_with(level, &a, &b, |_| {}), scalar);
/// }
/// ```
#[inline]
pub fn intersect_visit_counted_with(
    level: SimdLevel,
    a: &[u32],
    b: &[u32],
    visit: impl FnMut(u32),
) -> (u64, u64) {
    if a.is_empty() || b.is_empty() {
        return (0, 0);
    }
    let (s, l) = ordered_lens(a, b);
    if l >= ADVANCE_RATIO * s {
        advance_tier(level, l, a, b, visit)
    } else {
        merge_tier(level, s, a, b, visit)
    }
}

/// The interleaved-merge tier: block merge at the given level, scalar
/// three-way merge otherwise.
#[inline]
fn merge_tier(
    level: SimdLevel,
    s: usize,
    a: &[u32],
    b: &[u32],
    mut visit: impl FnMut(u32),
) -> (u64, u64) {
    #[cfg(target_arch = "x86_64")]
    {
        // No length floor at AVX2: below 8-lane blocks the masked
        // small/stream stages take over, and they beat the scalar merge
        // on every interleaved shape (unlike the 4-lane SSE2 blocks,
        // which need a full block per side to pay off).
        if level >= SimdLevel::Avx2 {
            // SAFETY: Avx2 only survives `resolve`/the gates on hosts
            // where `is_x86_feature_detected!("avx2")` held.
            return unsafe { x86::merge_avx2(a, b, &mut visit) };
        }
        if level >= SimdLevel::Sse2 && s >= MERGE_SSE2_MIN {
            // SAFETY: SSE2 is architecturally guaranteed on x86_64.
            return unsafe { x86::merge_sse2(a, b, &mut visit) };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (level, s);
    scalar::interleaved_counted(a, b, visit)
}

/// The advance-loop tier: vectorized advance loops at the given level,
/// scalar advance loops otherwise.
#[inline]
fn advance_tier(
    level: SimdLevel,
    l: usize,
    a: &[u32],
    b: &[u32],
    mut visit: impl FnMut(u32),
) -> (u64, u64) {
    #[cfg(target_arch = "x86_64")]
    {
        if level >= SimdLevel::Avx2 && l >= SIMD_SKEW_MIN {
            // SAFETY: as in `merge_tier`.
            return unsafe { x86::advance_avx2(a, b, &mut visit) };
        }
        if level >= SimdLevel::Sse2 && l >= SIMD_SKEW_MIN / 2 {
            // SAFETY: SSE2 is architecturally guaranteed on x86_64.
            return unsafe { x86::advance_sse2(a, b, &mut visit) };
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = (level, l);
    scalar::advance_counted(a, b, visit)
}

/// Galloping intersection: exponential-probe each element of the smaller
/// slice into the remainder of the larger one. Returns the count.
#[inline]
pub fn intersect_gallop_visit(a: &[u32], b: &[u32], visit: impl FnMut(u32)) -> u64 {
    intersect_gallop_visit_counted(a, b, visit).0
}

/// Galloping intersection returning `(matches, comparisons)`. Every
/// probe of the large slice (exponential step or binary-search midpoint)
/// counts as one comparison — at the ambient [`simd_level`] the probes
/// are located by vector compare, but the *reported* count is the
/// scalar probe sequence's, replayed arithmetically.
#[inline]
pub fn intersect_gallop_visit_counted(a: &[u32], b: &[u32], visit: impl FnMut(u32)) -> (u64, u64) {
    intersect_gallop_visit_counted_with(simd_level(), a, b, visit)
}

/// [`intersect_gallop_visit_counted`] at an explicit [`SimdLevel`].
///
/// ```
/// use pdtl_core::intersect::{intersect_gallop_visit_counted_with, SimdLevel};
///
/// let small = [5u32, 500, 5000];
/// let large: Vec<u32> = (0..10_000).collect();
/// let scalar = intersect_gallop_visit_counted_with(SimdLevel::Off, &small, &large, |_| {});
/// for level in SimdLevel::ALL {
///     let got = intersect_gallop_visit_counted_with(level, &small, &large, |_| {});
///     assert_eq!(got, scalar, "{level}");
/// }
/// ```
#[inline]
pub fn intersect_gallop_visit_counted_with(
    level: SimdLevel,
    a: &[u32],
    b: &[u32],
    mut visit: impl FnMut(u32),
) -> (u64, u64) {
    #[cfg(target_arch = "x86_64")]
    {
        let (s, l) = ordered_lens(a, b);
        // The vector-probed frontier only pays inside the gallop regime
        // (`GALLOP_RATIO`): on interleaved shapes forced through this
        // entry point the per-element window compare is pure overhead
        // over the 1–3 scalar probes it replaces (measured 2× slower on
        // the forced-gallop `1000x1000` bench row), so those run the
        // scalar kernel — as do small large sides (`GALLOP_SIMD_MIN`).
        if l >= GALLOP_SIMD_MIN && s * GALLOP_RATIO < l {
            if level >= SimdLevel::Avx2 {
                // SAFETY: as in `merge_tier`.
                return unsafe { x86::gallop_avx2(a, b, &mut visit) };
            }
            if level >= SimdLevel::Sse2 {
                // SAFETY: SSE2 is architecturally guaranteed on x86_64.
                return unsafe { x86::gallop_sse2(a, b, &mut visit) };
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = level;
    scalar::gallop_counted(a, b, visit)
}

/// Adaptive intersection: gallop when sizes are lopsided, merge
/// otherwise. Equal output on all inputs (property-tested).
#[inline]
pub fn intersect_adaptive_visit(a: &[u32], b: &[u32], visit: impl FnMut(u32)) -> u64 {
    intersect_adaptive_visit_counted(a, b, visit).0
}

/// Adaptive intersection returning `(matches, comparisons)`.
#[inline]
pub fn intersect_adaptive_visit_counted(
    a: &[u32],
    b: &[u32],
    visit: impl FnMut(u32),
) -> (u64, u64) {
    intersect_adaptive_visit_counted_with(simd_level(), a, b, visit)
}

/// [`intersect_adaptive_visit_counted`] at an explicit [`SimdLevel`] —
/// what the crossover ablation sweeps. The ratio boundaries
/// (`ADVANCE_RATIO`, `GALLOP_RATIO`) are shared by every level, so the
/// counted comparisons are level-invariant shape by shape.
///
/// ```
/// use pdtl_core::intersect::{intersect_adaptive_visit_counted_with, SimdLevel};
///
/// let a: Vec<u32> = (0..40).map(|x| x * 7).collect();
/// let b: Vec<u32> = (0..4000).collect();
/// let scalar = intersect_adaptive_visit_counted_with(SimdLevel::Off, &a, &b, |_| {});
/// let vector = intersect_adaptive_visit_counted_with(SimdLevel::detect(), &a, &b, |_| {});
/// assert_eq!(scalar, vector);
/// ```
#[inline]
pub fn intersect_adaptive_visit_counted_with(
    level: SimdLevel,
    a: &[u32],
    b: &[u32],
    visit: impl FnMut(u32),
) -> (u64, u64) {
    let (s, l) = ordered_lens(a, b);
    if s * GALLOP_RATIO < l {
        intersect_gallop_visit_counted_with(level, a, b, visit)
    } else {
        intersect_visit_counted_with(level, a, b, visit)
    }
}

/// Count-only adaptive intersection.
#[inline]
pub fn intersect_count(a: &[u32], b: &[u32]) -> u64 {
    intersect_adaptive_visit(a, b, |_| {})
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect(
        f: impl Fn(&[u32], &[u32], &mut dyn FnMut(u32)) -> u64,
        a: &[u32],
        b: &[u32],
    ) -> (u64, Vec<u32>) {
        let mut out = Vec::new();
        let n = f(a, b, &mut |x| out.push(x));
        (n, out)
    }

    #[test]
    fn basic_intersection() {
        let (n, out) = collect(
            |a, b, v| intersect_visit(a, b, v),
            &[1, 3, 5, 7],
            &[2, 3, 4, 7, 9],
        );
        assert_eq!(n, 2);
        assert_eq!(out, vec![3, 7]);
    }

    #[test]
    fn disjoint_and_empty() {
        assert_eq!(intersect_count(&[1, 2], &[3, 4]), 0);
        assert_eq!(intersect_count(&[], &[1]), 0);
        assert_eq!(intersect_count(&[], &[]), 0);
    }

    #[test]
    fn identical_slices() {
        let a = [2u32, 4, 6, 8];
        assert_eq!(intersect_count(&a, &a), 4);
    }

    #[test]
    fn gallop_matches_linear_lopsided() {
        let small = [5u32, 500, 5000, 49999];
        let large: Vec<u32> = (0..50_000).collect();
        let (n1, o1) = collect(|a, b, v| intersect_visit(a, b, v), &small, &large);
        let (n2, o2) = collect(|a, b, v| intersect_gallop_visit(a, b, v), &small, &large);
        assert_eq!(n1, 4);
        assert_eq!(n1, n2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn gallop_argument_order_irrelevant() {
        let a: Vec<u32> = (0..100).map(|x| x * 3).collect();
        let b: Vec<u32> = (0..1000).collect();
        let (n1, o1) = collect(|a, b, v| intersect_gallop_visit(a, b, v), &a, &b);
        let (n2, o2) = collect(|a, b, v| intersect_gallop_visit(a, b, v), &b, &a);
        assert_eq!(n1, n2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn all_kernels_agree_on_randomish_inputs() {
        // deterministic pseudo-random sorted sets
        let mut x = 1u64;
        let mut next = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (x >> 33) as u32 % 10_000
        };
        for trial in 0..50 {
            let mut a: Vec<u32> = (0..(trial * 7 % 300)).map(|_| next()).collect();
            let mut b: Vec<u32> = (0..(trial * 13 % 900)).map(|_| next()).collect();
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            let (n1, o1) = collect(|a, b, v| intersect_visit(a, b, v), &a, &b);
            let (n2, o2) = collect(|a, b, v| intersect_gallop_visit(a, b, v), &a, &b);
            let (n3, o3) = collect(|a, b, v| intersect_adaptive_visit(a, b, v), &a, &b);
            assert_eq!((n1, &o1), (n2, &o2), "trial {trial}");
            assert_eq!((n1, &o1), (n3, &o3), "trial {trial}");
        }
    }

    #[test]
    fn interleaved_and_advance_forms_agree() {
        // The ratio dispatch is an optimisation, never a semantic
        // change: both linear forms must produce identical output on
        // every shape (interleaved, skewed, ties at both ends).
        let shapes: [(usize, usize); 6] =
            [(8, 8), (100, 100), (50, 190), (10, 41), (3, 1000), (1, 7)];
        for &(la, lb) in &shapes {
            let a: Vec<u32> = (0..la as u32).map(|x| x * 3).collect();
            let b: Vec<u32> = (0..lb as u32).map(|x| x * 2 + 1).collect();
            for (x, y) in [(&a, &b), (&b, &a)] {
                let mut o1 = Vec::new();
                let (n1, _) = scalar::interleaved_counted(x, y, |v| o1.push(v));
                let mut o2 = Vec::new();
                let (n2, _) = scalar::advance_counted(x, y, |v| o2.push(v));
                let mut o3 = Vec::new();
                let (n3, _) = intersect_visit_counted(x, y, |v| o3.push(v));
                assert_eq!((n1, &o1), (n2, &o2), "{la}x{lb}");
                assert_eq!((n1, &o1), (n3, &o3), "{la}x{lb}");
            }
        }
    }

    #[test]
    fn visit_order_is_ascending() {
        let a: Vec<u32> = (0..200).step_by(2).collect();
        let b: Vec<u32> = (0..200).step_by(3).collect();
        let (_, out) = collect(|a, b, v| intersect_adaptive_visit(a, b, v), &a, &b);
        assert!(out.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn merge_comparisons_are_linear() {
        let a: Vec<u32> = (0..500).map(|x| x * 2).collect();
        let b: Vec<u32> = (0..500).map(|x| x * 2 + 1).collect();
        let (m, cmps) = intersect_visit_counted(&a, &b, |_| {});
        assert_eq!(m, 0);
        // advance steps are bounded by |a| + |b|; the per-frontier match
        // re-test adds at most one comparison per advance
        assert!(cmps <= 2 * (a.len() + b.len()) as u64, "cmps {cmps}");
        assert!(cmps >= a.len() as u64);
    }

    #[test]
    fn gallop_comparisons_are_logarithmic() {
        // s elements probed into l: O(s * log(l/s)), far below s + l.
        let small: Vec<u32> = (0..16u32).map(|x| x * 6000).collect();
        let large: Vec<u32> = (0..100_000).collect();
        let (m, cmps) = intersect_gallop_visit_counted(&small, &large, |_| {});
        assert_eq!(m, 16);
        assert!(
            cmps < 16 * 2 * (17 + 2),
            "gallop should be O(s log(l/s)) comparisons, got {cmps}"
        );
        let (_, merge_cmps) = intersect_visit_counted(&small, &large, |_| {});
        assert!(cmps < merge_cmps / 10, "{cmps} vs merge {merge_cmps}");
    }

    #[test]
    fn counted_variants_agree_with_plain() {
        let a: Vec<u32> = (0..300).step_by(3).collect();
        let b: Vec<u32> = (0..300).step_by(7).collect();
        let (plain, _) = collect(|a, b, v| intersect_adaptive_visit(a, b, v), &a, &b);
        let (counted, cmps) = intersect_adaptive_visit_counted(&a, &b, |_| {});
        assert_eq!(plain, counted);
        assert!(cmps > 0);
    }

    #[test]
    fn level_names_round_trip() {
        for l in SimdLevel::ALL {
            assert_eq!(SimdLevel::parse(l.name()), Some(l));
            assert_eq!(SimdLevel::parse(&l.name().to_uppercase()), Some(l));
            assert_eq!(l.to_string(), l.name());
        }
        assert_eq!(SimdLevel::parse("scalar"), Some(SimdLevel::Off));
        assert_eq!(SimdLevel::parse("auto"), None, "auto is not a level");
        assert_eq!(SimdLevel::parse("gibberish"), None);
    }

    #[test]
    fn resolve_caps_at_host_capability() {
        for l in SimdLevel::ALL {
            assert!(l.resolve() <= SimdLevel::detect());
            assert!(l.resolve() <= l, "resolve never raises the level");
        }
        assert_eq!(SimdLevel::Off.resolve(), SimdLevel::Off);
        #[cfg(target_arch = "x86_64")]
        assert!(SimdLevel::detect() >= SimdLevel::Sse2, "SSE2 is baseline");
    }

    #[test]
    fn every_level_matches_scalar_on_every_tier_shape() {
        // One shape per dispatch tier (interleaved / advance / gallop),
        // plus block-edge lengths; the exhaustive adversarial sweep
        // lives in tests/simd_parity.rs.
        let shapes: [(usize, usize); 8] = [
            (1000, 1000),
            (100, 100),
            (9, 9),
            (100, 990),
            (16, 120),
            (10, 10_000),
            (7, 200),
            (8, 64),
        ];
        for &(la, lb) in &shapes {
            let a: Vec<u32> = (0..la as u32).map(|x| x * 3).collect();
            let b: Vec<u32> = (0..lb as u32).map(|x| x * 2).collect();
            for (x, y) in [(&a, &b), (&b, &a)] {
                let mut so = Vec::new();
                let scalar = intersect_adaptive_visit_counted_with(SimdLevel::Off, x, y, |v| {
                    so.push(v);
                });
                for level in [SimdLevel::Sse2, SimdLevel::Avx2] {
                    let mut vo = Vec::new();
                    let got = intersect_adaptive_visit_counted_with(level, x, y, |v| vo.push(v));
                    assert_eq!(got, scalar, "{la}x{lb} at {level}");
                    assert_eq!(vo, so, "{la}x{lb} at {level} visit order");
                }
            }
        }
    }
}
