//! Portable scalar intersection kernels, plus the count-reconstruction
//! helpers that keep the SIMD tier accounting-identical to them.
//!
//! Three kernels, one per dispatch tier (see the module docs): the
//! three-way-branch merge for tightly interleaved inputs, the
//! advance-loop merge for skewed ones, and galloping for lopsided ones.
//! These are the *reference semantics*: a SIMD kernel may walk the data
//! any way it likes, but must visit the same elements in the same order
//! and report the comparison count its scalar twin would have reported.
//! For the merges that count is a closed form over the final cursor
//! positions (`i + j - matches`, a function of the input rather than
//! the path — unit-tested below); for galloping it is a deterministic
//! replay of the probe sequence ([`gallop_probe_cost`]).

/// The three-way-branch merge: one comparison per step, the fast path
/// on inputs whose elements interleave (near-equal lengths). Callers
/// guarantee both slices are non-empty.
///
/// No comparison counter runs in the loop: every step advances `i`,
/// `j`, or both (on a match), so the step count is recoverable as
/// `i + j - matches` — one comparison per step, none of the counter's
/// loop-carried dependency.
#[inline]
pub(super) fn interleaved_counted(a: &[u32], b: &[u32], mut visit: impl FnMut(u32)) -> (u64, u64) {
    let (mut i, mut j) = (0usize, 0usize);
    let mut matches = 0u64;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                visit(a[i]);
                matches += 1;
                i += 1;
                j += 1;
            }
        }
    }
    (matches, (i + j) as u64 - matches)
}

/// The advance-loop merge: each tight loop runs one cursor up to the
/// other's frontier with a single comparison per step, the fast path
/// when one side produces long runs (skewed lengths). Callers guarantee
/// both slices are non-empty.
#[inline]
pub(super) fn advance_counted(a: &[u32], b: &[u32], mut visit: impl FnMut(u32)) -> (u64, u64) {
    let (mut i, mut j) = (0usize, 0usize);
    let mut matches = 0u64;
    let mut cmps = 0u64;
    'outer: loop {
        // Tight single-comparison advance loops: each catches one side
        // up to the other's frontier before re-testing for a match.
        let mut y = b[j];
        while a[i] < y {
            cmps += 1;
            i += 1;
            if i == a.len() {
                break 'outer;
            }
        }
        let x = a[i];
        while b[j] < x {
            cmps += 1;
            j += 1;
            if j == b.len() {
                break 'outer;
            }
        }
        y = b[j];
        cmps += 1;
        if x == y {
            visit(x);
            matches += 1;
            i += 1;
            j += 1;
            if i == a.len() || j == b.len() {
                break;
            }
        }
    }
    (matches, cmps)
}

/// Galloping intersection: exponential-probe each element of the
/// smaller slice into the remainder of the larger one. Every probe of
/// the large slice (exponential step or binary-search midpoint) counts
/// as one comparison.
#[inline]
pub(super) fn gallop_counted(a: &[u32], b: &[u32], mut visit: impl FnMut(u32)) -> (u64, u64) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut matches = 0u64;
    let mut cmps = 0u64;
    let mut lo = 0usize;
    for &x in small {
        // Exponential probe from the current frontier.
        let mut step = 1usize;
        let mut hi = lo;
        while hi < large.len() {
            cmps += 1;
            if large[hi] >= x {
                break;
            }
            lo = hi + 1;
            hi = lo + step;
            step <<= 1;
        }
        // Invariant: if hi < len then large[hi] >= x, so the search
        // window must include index hi itself.
        let mut right = (hi + 1).min(large.len());
        // Binary search for x in large[lo..right], counting probes.
        while lo < right {
            let mid = lo + (right - lo) / 2;
            cmps += 1;
            match large[mid].cmp(&x) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => right = mid,
                std::cmp::Ordering::Equal => {
                    visit(x);
                    matches += 1;
                    lo = mid + 1;
                    break;
                }
            }
        }
        if lo >= large.len() {
            break;
        }
    }
    (matches, cmps)
}

/// The probes [`gallop_counted`] charges for one element of the small
/// side, replayed arithmetically.
///
/// Given the frontier `f` (first index `>= lo0` whose value is `>= x`,
/// or `len`), every comparison outcome of the scalar gallop is
/// determined: an exponential probe at `hi` succeeds iff `hi >= f`, a
/// binary midpoint `mid` orders below/above `x` as `mid < f` / `mid > f`,
/// and hits `x` exactly at `mid == f` when `matched`. Replaying the
/// probe sequence against those outcomes reproduces the scalar count
/// without touching memory — which is what lets the SIMD gallop locate
/// `f` with vector compares and still report scalar-identical
/// `cpu_ops`. After the element, the scalar frontier is
/// `f + usize::from(matched)`.
#[inline]
pub(super) fn gallop_probe_cost(lo0: usize, f: usize, matched: bool, len: usize) -> u64 {
    let mut cost = 0u64;
    let mut lo = lo0;
    let mut hi = lo0;
    let mut step = 1usize;
    while hi < len {
        cost += 1;
        if hi >= f {
            break;
        }
        lo = hi + 1;
        hi = lo + step;
        step <<= 1;
    }
    let mut right = (hi + 1).min(len);
    while lo < right {
        let mid = lo + (right - lo) / 2;
        cost += 1;
        if mid < f {
            lo = mid + 1;
        } else if mid > f || !matched {
            right = mid;
        } else {
            break; // the Equal arm: mid == f and large[f] == x
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Dup-free sorted pseudo-random set.
    fn pseudo_set(seed: u64, len: usize, span: u32) -> Vec<u32> {
        let mut x = seed | 1;
        let mut v: Vec<u32> = (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) as u32 % span.max(1)
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn interleaved_count_is_a_closed_form_over_the_stop_cursors() {
        // The contract the SIMD block merges lean on: the scalar merge's
        // final cursor positions are a function of the input (exhausted
        // side fully consumed, the other side consumed everything below
        // `m = min(maxes)` plus a matched `m`), and the count is
        // `i + j - matches` over them.
        for seed in 0..60u64 {
            let a = pseudo_set(seed * 2 + 1, 1 + (seed as usize * 7) % 200, 400);
            let b = pseudo_set(seed * 2 + 2, 1 + (seed as usize * 13) % 200, 400);
            if a.is_empty() || b.is_empty() {
                continue;
            }
            let mut last = None;
            let (m, cmps) = interleaved_counted(&a, &b, |v| last = Some(v));
            let amax = *a.last().unwrap();
            let bmax = *b.last().unwrap();
            let (i_stop, j_stop) = match amax.cmp(&bmax) {
                std::cmp::Ordering::Equal => (a.len(), b.len()),
                std::cmp::Ordering::Less => (
                    a.len(),
                    b.partition_point(|&y| y < amax) + usize::from(last == Some(amax)),
                ),
                std::cmp::Ordering::Greater => (
                    a.partition_point(|&x| x < bmax) + usize::from(last == Some(bmax)),
                    b.len(),
                ),
            };
            assert_eq!(
                cmps,
                (i_stop + j_stop) as u64 - m,
                "seed {seed}: a={a:?} b={b:?}"
            );
        }
    }

    #[test]
    fn gallop_probe_cost_replays_the_scalar_probes() {
        for seed in 0..40u64 {
            let small = pseudo_set(seed * 2 + 1, 1 + (seed as usize * 3) % 24, 4000);
            let large = pseudo_set(seed * 2 + 2, 200 + (seed as usize * 17) % 800, 4000);
            if small.is_empty() || large.is_empty() || small.len() > large.len() {
                continue;
            }
            let (_, cmps) = gallop_counted(&small, &large, |_| {});
            // Replay: walk the small side maintaining the frontier by hand.
            let mut total = 0u64;
            let mut lo = 0usize;
            for &x in &small {
                let f = lo + large[lo..].partition_point(|&y| y < x);
                let matched = f < large.len() && large[f] == x;
                total += gallop_probe_cost(lo, f, matched, large.len());
                lo = f + usize::from(matched);
                if lo >= large.len() {
                    break;
                }
            }
            assert_eq!(cmps, total, "seed {seed}");
        }
    }
}
