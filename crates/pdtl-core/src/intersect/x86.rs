//! x86_64 `std::arch` intersection kernels, one per dispatch tier.
//!
//! Every kernel here upholds the two module contracts: the visit
//! sequence is exactly the scalar kernel's (same matches, ascending),
//! and the returned comparison count is the scalar kernel's — either
//! derived from scalar-identical cursor state after the vector work
//! (`merge_tail`'s `i + j - matches`, `scalar::gallop_probe_cost`), or
//! charged by scalar loops that are themselves step-for-step the scalar
//! kernel's; no counter ever runs per-lane inside a vector loop.
//! Inputs are
//! strictly increasing `u32` slices (the block merges would double-emit
//! on duplicates); the dispatcher guarantees non-empty slices and the
//! per-kernel minimum lengths.
//!
//! Safety: SSE2 kernels are architecturally guaranteed on x86_64; the
//! `avx2`-suffixed kernels are `#[target_feature(enable = "avx2")]`
//! and must only be called after `is_x86_feature_detected!("avx2")`,
//! which is what `SimdLevel::resolve`/`detect` establish.

use std::arch::x86_64::*;

use super::scalar;

/// Count of leading lanes in the 4-lane window at `p` that are `< y`
/// unsigned. On sorted input the `< y` lanes form a prefix, so this is
/// also the in-window index of the first lane `>= y` (4 = none).
///
/// `u32` order under SSE2's signed compares: bias both sides by
/// `i32::MIN` (flip the sign bit), which is the standard
/// order-preserving unsigned→signed shift.
#[inline(always)]
unsafe fn lt_prefix_sse2(p: *const u32, y: u32) -> usize {
    let bias = _mm_set1_epi32(i32::MIN);
    let v = _mm_xor_si128(_mm_loadu_si128(p as *const __m128i), bias);
    let yy = _mm_xor_si128(_mm_set1_epi32(y as i32), bias);
    let lt = _mm_cmplt_epi32(v, yy);
    (_mm_movemask_ps(_mm_castsi128_ps(lt)) as u32).trailing_ones() as usize
}

/// 8-lane AVX2 analog of [`lt_prefix_sse2`] (no `cmplt` in AVX2, so the
/// compare is `y > lane`).
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn lt_prefix_avx2(p: *const u32, y: u32) -> usize {
    let bias = _mm256_set1_epi32(i32::MIN);
    let v = _mm256_xor_si256(_mm256_loadu_si256(p as *const __m256i), bias);
    let yy = _mm256_xor_si256(_mm256_set1_epi32(y as i32), bias);
    let lt = _mm256_cmpgt_epi32(yy, v);
    (_mm256_movemask_ps(_mm256_castsi256_ps(lt)) as u32).trailing_ones() as usize
}

/// All-pairs equality of two 8-lane blocks: the identity compare plus
/// the seven rotations of `vb` (`_mm256_cmpeq_epi32` +
/// `_mm256_permutevar8x32_epi32`), OR-ed and movemask-compressed into
/// an a-lane hit mask. One index vector per rotation amount, so all
/// seven permutes are independent of each other (a serial
/// rotate-of-the-rotation chain triples the critical path — measured on
/// the interleaved bench shape).
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn eq_mask_avx2(va: __m256i, vb: __m256i) -> u32 {
    let rots = [
        _mm256_setr_epi32(1, 2, 3, 4, 5, 6, 7, 0),
        _mm256_setr_epi32(2, 3, 4, 5, 6, 7, 0, 1),
        _mm256_setr_epi32(3, 4, 5, 6, 7, 0, 1, 2),
        _mm256_setr_epi32(4, 5, 6, 7, 0, 1, 2, 3),
        _mm256_setr_epi32(5, 6, 7, 0, 1, 2, 3, 4),
        _mm256_setr_epi32(6, 7, 0, 1, 2, 3, 4, 5),
        _mm256_setr_epi32(7, 0, 1, 2, 3, 4, 5, 6),
    ];
    let mut eq = _mm256_cmpeq_epi32(va, vb);
    for rot in rots {
        let r = _mm256_permutevar8x32_epi32(vb, rot);
        eq = _mm256_or_si256(eq, _mm256_cmpeq_epi32(va, r));
    }
    _mm256_movemask_ps(_mm256_castsi256_ps(eq)) as u32
}

/// AVX2 block merge for the interleaved tier: compare an 8-lane block
/// of `a` against all 8 rotations of an 8-lane block of `b`
/// ([`eq_mask_avx2`]), emit hits, then advance whichever block has the
/// smaller maximum (both on a tie). Emitting hits in a-lane order keeps
/// the visit sequence ascending; strict monotonicity of both inputs
/// guarantees each value matches at most one lane, so no double emits.
/// When at most one masked block per side remains — which includes the
/// whole input on the short lists the MGT inner loop issues — the
/// branchless [`merge_small_avx2`] finishes the merge; only uneven
/// remainders fall back to the 4-lane stage and the scalar tail.
/// Callers guarantee non-empty slices.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn merge_avx2<V: FnMut(u32)>(a: &[u32], b: &[u32], visit: &mut V) -> (u64, u64) {
    debug_assert!(!a.is_empty() && !b.is_empty());
    let (mut i, mut j) = (0usize, 0usize);
    let mut matches = 0u64;
    // Strict bound: the last element of each side is left for the
    // finishing stage, which therefore always runs to one side's
    // exhaustion — that makes its exit cursors the scalar merge's stop
    // positions (see `merge_tail`).
    while i + 8 < a.len() && j + 8 < b.len() {
        let va = _mm256_loadu_si256(a.as_ptr().add(i) as *const __m256i);
        let vb = _mm256_loadu_si256(b.as_ptr().add(j) as *const __m256i);
        let mut mask = eq_mask_avx2(va, vb);
        while mask != 0 {
            let lane = mask.trailing_zeros() as usize;
            visit(*a.get_unchecked(i + lane));
            matches += 1;
            mask &= mask - 1;
        }
        let amax = *a.get_unchecked(i + 7);
        let bmax = *b.get_unchecked(j + 7);
        // Discarding the block with the smaller max cannot skip a
        // match: any of its values <= that max would sit inside the
        // other block's compared window.
        i += usize::from(amax <= bmax) * 8;
        j += usize::from(bmax <= amax) * 8;
    }
    if a.len() - i > 8 || b.len() - j > 8 {
        merge_stream_avx2(a, b, &mut i, &mut j, &mut matches, visit);
    } else {
        merge_small_avx2(a, b, &mut i, &mut j, &mut matches, visit);
    }
    (matches, (i + j) as u64 - matches)
}

/// Uneven-remainder stage of [`merge_avx2`]: the main loop left one
/// side with at most one (possibly partial) block and the other with
/// more. Hold the short remainder as a padded masked block and stream
/// full 8-lane blocks of the long side against it, discarding each long
/// block whose max is below the short side's max (every such element
/// was just compared against every live short lane). At the first long
/// block whose max reaches the short max, the merge is over — the short
/// side's max is strictly below the long side's overall max (the long
/// side's last element sits beyond this block), so the stop cursors
/// follow from `merge_tail`'s closed form with one biased compare
/// counting the in-block elements below it. If the long side instead
/// runs down to a single block first, [`merge_small_avx2`] finishes.
///
/// Emit order stays ascending across streamed blocks: a short-side lane
/// matched in a later block carries a larger value than any lane
/// matched earlier (earlier blocks' elements are all smaller), and
/// within a block hits are emitted in lane order.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn merge_stream_avx2<V: FnMut(u32)>(
    a: &[u32],
    b: &[u32],
    i: &mut usize,
    j: &mut usize,
    matches: &mut u64,
    visit: &mut V,
) {
    let bias = _mm256_set1_epi32(i32::MIN);
    let idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    if a.len() - *i <= 8 {
        // `a` is the short side.
        let la = a.len() - *i;
        let pa = a.as_ptr().add(*i);
        let amax = *a.get_unchecked(a.len() - 1);
        let ka = _mm256_cmpgt_epi32(_mm256_set1_epi32(la as i32), idx);
        let va = _mm256_blendv_epi8(
            _mm256_set1_epi32(amax as i32),
            _mm256_maskload_epi32(pa as *const i32, ka),
            ka,
        );
        let alive = (1u32 << la) - 1;
        while b.len() - *j > 8 {
            let vb = _mm256_loadu_si256(b.as_ptr().add(*j) as *const __m256i);
            let hits = eq_mask_avx2(va, vb) & alive;
            *matches += u64::from(hits.count_ones());
            let mut mask = hits;
            while mask != 0 {
                let lane = mask.trailing_zeros() as usize;
                visit(*pa.add(lane));
                mask &= mask - 1;
            }
            if *b.get_unchecked(*j + 7) >= amax {
                // This block's max reaches amax, and b's last element
                // lies beyond it, so amax < b.last(): `a` exhausts and
                // `b` stops at its elements `< amax` (all discarded
                // blocks, plus this block's sub-amax prefix) plus a
                // matched `amax` — which only this block can hold.
                let y = _mm256_xor_si256(_mm256_set1_epi32(amax as i32), bias);
                let lt = _mm256_cmpgt_epi32(y, _mm256_xor_si256(vb, bias));
                let below = (_mm256_movemask_ps(_mm256_castsi256_ps(lt)) as u32).count_ones();
                *j += below as usize + ((hits >> (la - 1)) & 1) as usize;
                *i = a.len();
                return;
            }
            *j += 8;
        }
    } else {
        // `b` is the short side; hits stay a-lane indexed so emission
        // is unchanged, and `b`'s own-max padding is harmless (an `a`
        // lane equal to it is a genuine match with `b`'s last element).
        let lb = b.len() - *j;
        let pb = b.as_ptr().add(*j);
        let bmax = *b.get_unchecked(b.len() - 1);
        let kb = _mm256_cmpgt_epi32(_mm256_set1_epi32(lb as i32), idx);
        let vb = _mm256_blendv_epi8(
            _mm256_set1_epi32(bmax as i32),
            _mm256_maskload_epi32(pb as *const i32, kb),
            kb,
        );
        while a.len() - *i > 8 {
            let va = _mm256_loadu_si256(a.as_ptr().add(*i) as *const __m256i);
            let hits = eq_mask_avx2(va, vb);
            *matches += u64::from(hits.count_ones());
            let mut mask = hits;
            while mask != 0 {
                let lane = mask.trailing_zeros() as usize;
                visit(*a.get_unchecked(*i + lane));
                mask &= mask - 1;
            }
            if *a.get_unchecked(*i + 7) >= bmax {
                // bmax < a.last(): `b` exhausts, `a` stops at its
                // elements `< bmax` plus a matched `bmax`. "Matched"
                // has no reserved a-lane bit, so one direct compare.
                let x = _mm256_xor_si256(_mm256_set1_epi32(bmax as i32), bias);
                let lt = _mm256_cmpgt_epi32(x, _mm256_xor_si256(va, bias));
                let below = (_mm256_movemask_ps(_mm256_castsi256_ps(lt)) as u32).count_ones();
                let eqb = _mm256_cmpeq_epi32(va, _mm256_set1_epi32(bmax as i32));
                let matched = _mm256_movemask_ps(_mm256_castsi256_ps(eqb)) != 0;
                *i += below as usize + usize::from(matched);
                *j = b.len();
                return;
            }
            *i += 8;
        }
    }
    // The long side ran down to one block before its max caught up:
    // both remainders now fit a masked block each.
    merge_small_avx2(a, b, i, j, matches, visit);
}

/// Branchless finisher for the block merge when each side has at most
/// one (possibly partial) 8-lane block left: masked-load both
/// remainders, pad the dead lanes with the side's own maximum (padding
/// can then only duplicate a value a real lane already carries, so it
/// manufactures no match the scalar merge wouldn't find), take the
/// all-pairs hit mask restricted to `a`'s live lanes, and emit.
///
/// The cursors advance straight to the scalar merge's stop positions,
/// computed from the closed form `merge_tail` documents: the side with
/// the smaller maximum `m` is exhausted, the other consumes its
/// elements `< m` (one biased vector compare + popcount) plus `m`
/// itself iff it matched. Replaces up to 16 data-dependent scalar-tail
/// branches with a fixed ~25-instruction sequence — the tail was the
/// dominant cost of the short interleaved intersections the in-memory
/// MGT workload is made of.
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn merge_small_avx2<V: FnMut(u32)>(
    a: &[u32],
    b: &[u32],
    i: &mut usize,
    j: &mut usize,
    matches: &mut u64,
    visit: &mut V,
) {
    let (la, lb) = (a.len() - *i, b.len() - *j);
    debug_assert!((1..=8).contains(&la) && (1..=8).contains(&lb));
    let pa = a.as_ptr().add(*i);
    let pb = b.as_ptr().add(*j);
    let amax = *a.get_unchecked(a.len() - 1);
    let bmax = *b.get_unchecked(b.len() - 1);
    let idx = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    let ka = _mm256_cmpgt_epi32(_mm256_set1_epi32(la as i32), idx);
    let kb = _mm256_cmpgt_epi32(_mm256_set1_epi32(lb as i32), idx);
    let va = _mm256_blendv_epi8(
        _mm256_set1_epi32(amax as i32),
        _mm256_maskload_epi32(pa as *const i32, ka),
        ka,
    );
    let vb = _mm256_blendv_epi8(
        _mm256_set1_epi32(bmax as i32),
        _mm256_maskload_epi32(pb as *const i32, kb),
        kb,
    );
    let hits = eq_mask_avx2(va, vb) & ((1u32 << la) - 1);
    *matches += u64::from(hits.count_ones());
    let mut mask = hits;
    while mask != 0 {
        let lane = mask.trailing_zeros() as usize;
        visit(*pa.add(lane));
        mask &= mask - 1;
    }
    let bias = _mm256_set1_epi32(i32::MIN);
    match amax.cmp(&bmax) {
        std::cmp::Ordering::Equal => {
            *i = a.len();
            *j = b.len();
        }
        std::cmp::Ordering::Less => {
            // `a` exhausts; `b` consumes its elements `< amax`, plus
            // `amax` iff it matched — and `amax` sits in `a`'s last
            // live lane, so "matched" is that lane's hit bit.
            let y = _mm256_xor_si256(_mm256_set1_epi32(amax as i32), bias);
            let lt = _mm256_cmpgt_epi32(y, _mm256_xor_si256(vb, bias));
            let below = (_mm256_movemask_ps(_mm256_castsi256_ps(lt)) as u32) & ((1u32 << lb) - 1);
            *i = a.len();
            *j += below.count_ones() as usize + ((hits >> (la - 1)) & 1) as usize;
        }
        std::cmp::Ordering::Greater => {
            // Symmetric, except "bmax matched" has no reserved hit bit
            // (hits are a-lane indexed); one direct compare finds
            // whether any live `a` lane equals it.
            let x = _mm256_xor_si256(_mm256_set1_epi32(bmax as i32), bias);
            let lt = _mm256_cmpgt_epi32(x, _mm256_xor_si256(va, bias));
            let below = (_mm256_movemask_ps(_mm256_castsi256_ps(lt)) as u32) & ((1u32 << la) - 1);
            let eqb = _mm256_cmpeq_epi32(va, _mm256_set1_epi32(bmax as i32));
            let matched =
                (_mm256_movemask_ps(_mm256_castsi256_ps(eqb)) as u32) & ((1u32 << la) - 1);
            *i += below.count_ones() as usize + usize::from(matched != 0);
            *j = b.len();
        }
    }
}

/// SSE2 4-lane analog of [`merge_avx2`] (rotations via
/// `_mm_shuffle_epi32`). Requires `min(|a|, |b|) >= 4`.
pub(super) unsafe fn merge_sse2<V: FnMut(u32)>(a: &[u32], b: &[u32], visit: &mut V) -> (u64, u64) {
    debug_assert!(a.len() >= 4 && b.len() >= 4);
    let (mut i, mut j) = (0usize, 0usize);
    let mut matches = 0u64;
    merge_blocks_sse2(a, b, &mut i, &mut j, &mut matches, visit);
    merge_tail(a, b, i, j, visit, matches)
}

/// The 4-lane block stage of [`merge_sse2`]. Strict bound, as in
/// `merge_avx2`'s main loop: the scalar tail must finish the merge.
#[inline(always)]
unsafe fn merge_blocks_sse2<V: FnMut(u32)>(
    a: &[u32],
    b: &[u32],
    i: &mut usize,
    j: &mut usize,
    matches: &mut u64,
    visit: &mut V,
) {
    while *i + 4 < a.len() && *j + 4 < b.len() {
        let va = _mm_loadu_si128(a.as_ptr().add(*i) as *const __m128i);
        let vb = _mm_loadu_si128(b.as_ptr().add(*j) as *const __m128i);
        let mut eq = _mm_cmpeq_epi32(va, vb);
        // The three rotations of b, each shuffled directly from the
        // loaded block (independent, not a rotate-of-the-rotation
        // chain): lane i of rotate-left-by-k reads lane (i + k) % 4.
        let r1 = _mm_shuffle_epi32::<0b00_11_10_01>(vb);
        eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, r1));
        let r2 = _mm_shuffle_epi32::<0b01_00_11_10>(vb);
        eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, r2));
        let r3 = _mm_shuffle_epi32::<0b10_01_00_11>(vb);
        eq = _mm_or_si128(eq, _mm_cmpeq_epi32(va, r3));
        let mut mask = _mm_movemask_ps(_mm_castsi128_ps(eq)) as u32;
        while mask != 0 {
            let lane = mask.trailing_zeros() as usize;
            visit(*a.get_unchecked(*i + lane));
            *matches += 1;
            mask &= mask - 1;
        }
        let amax = *a.get_unchecked(*i + 3);
        let bmax = *b.get_unchecked(*j + 3);
        *i += usize::from(amax <= bmax) * 4;
        *j += usize::from(bmax <= amax) * 4;
    }
}

/// Scalar three-way tail shared by both block merges, plus the derived
/// count.
///
/// The block loops' strict bounds guarantee at least one unconsumed
/// element per side here, so the tail always runs and exits at the
/// first exhaustion. At that point the cursors sit exactly where the
/// scalar merge's would: the exhausted side is fully consumed, and the
/// other side has consumed precisely its elements below
/// `m = min(a.last(), b.last())` plus `m` itself iff it matched — every
/// element a block discard drops is bounded by the opposite block's
/// max, and the tail consumes in merge order, so nothing below `m` can
/// survive to the exit on either path. The scalar count is therefore
/// the same closed form over the exit cursors the scalar kernel uses:
/// `i + j - matches`.
#[inline(always)]
unsafe fn merge_tail<V: FnMut(u32)>(
    a: &[u32],
    b: &[u32],
    mut i: usize,
    mut j: usize,
    visit: &mut V,
    mut matches: u64,
) -> (u64, u64) {
    while i < a.len() && j < b.len() {
        let x = *a.get_unchecked(i);
        let y = *b.get_unchecked(j);
        match x.cmp(&y) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                visit(x);
                matches += 1;
                i += 1;
                j += 1;
            }
        }
    }
    (matches, (i + j) as u64 - matches)
}

/// One side of the advance-loop merge: run the cursor at `*i` up to the
/// first element of `s` that is `>= y`, charging one comparison per
/// element passed (the scalar loop's exact count — it charges per
/// advanced element, and the failing frontier re-test is uncharged).
///
/// A `lt_prefix`-per-window walk loses to the scalar loop here (the
/// bias/compare/movemask chain is ~10 cycles per `W` lanes against the
/// scalar loop's ~1 cycle per element), so the walk is block-max
/// skipping instead: *one* scalar compare of the block's last lane
/// skips `4W`, then `W`, elements at a time, and a single vector
/// compare resolves the final in-block position. Returns `true` when
/// `s` is exhausted.
#[inline(always)]
unsafe fn advance_side<const W: usize>(
    s: &[u32],
    y: u32,
    i: &mut usize,
    cmps: &mut u64,
    lt_prefix: &impl Fn(*const u32, u32) -> usize,
) -> bool {
    let i0 = *i;
    // Short advances first, scalar: on mild skews most advances move
    // the cursor 0–2 elements, where the bias/compare/movemask chain
    // below costs ~10 cycles against the scalar compare's one (the
    // 10000x100000 crossover-sweep shape ran 2.2x slower without this).
    while *i < s.len() && *i - i0 < 3 {
        if *s.get_unchecked(*i) >= y {
            *cmps += (*i - i0) as u64;
            return false;
        }
        *i += 1;
    }
    while *i + 4 * W <= s.len() && *s.get_unchecked(*i + 4 * W - 1) < y {
        *i += 4 * W;
    }
    while *i + W <= s.len() && *s.get_unchecked(*i + W - 1) < y {
        *i += W;
    }
    if *i + W <= s.len() {
        // The block's last lane is >= y, so the in-block prefix is < W
        // and the cursor lands strictly inside the slice.
        *i += lt_prefix(s.as_ptr().add(*i), y);
        *cmps += (*i - i0) as u64;
        false
    } else {
        while *i < s.len() && *s.get_unchecked(*i) < y {
            *i += 1;
        }
        *cmps += (*i - i0) as u64;
        *i == s.len()
    }
}

/// The advance-loop tier with block-skipping advances: structurally the
/// scalar `advance_counted`, but each "run cursor up to the other's
/// frontier" loop skips blocks by their maxima and vector-resolves the
/// final block ([`advance_side`]). The count is exact by construction:
/// comparisons charged = elements advanced, as in the scalar loop.
#[inline(always)]
unsafe fn advance_driver<const W: usize, V: FnMut(u32)>(
    a: &[u32],
    b: &[u32],
    visit: &mut V,
    lt_prefix: impl Fn(*const u32, u32) -> usize,
) -> (u64, u64) {
    let (mut i, mut j) = (0usize, 0usize);
    let mut matches = 0u64;
    let mut cmps = 0u64;
    loop {
        let mut y = *b.get_unchecked(j);
        if advance_side::<W>(a, y, &mut i, &mut cmps, &lt_prefix) {
            break;
        }
        let x = *a.get_unchecked(i);
        if advance_side::<W>(b, x, &mut j, &mut cmps, &lt_prefix) {
            break;
        }
        y = *b.get_unchecked(j);
        cmps += 1;
        if x == y {
            visit(x);
            matches += 1;
            i += 1;
            j += 1;
            if i == a.len() || j == b.len() {
                break;
            }
        }
    }
    (matches, cmps)
}

/// [`advance_driver`] at 8 lanes. Callers guarantee non-empty slices.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn advance_avx2<V: FnMut(u32)>(
    a: &[u32],
    b: &[u32],
    visit: &mut V,
) -> (u64, u64) {
    advance_driver::<8, V>(a, b, visit, |p, y| unsafe { lt_prefix_avx2(p, y) })
}

/// [`advance_driver`] at 4 lanes. Callers guarantee non-empty slices.
pub(super) unsafe fn advance_sse2<V: FnMut(u32)>(
    a: &[u32],
    b: &[u32],
    visit: &mut V,
) -> (u64, u64) {
    advance_driver::<4, V>(a, b, visit, |p, y| unsafe { lt_prefix_sse2(p, y) })
}

/// One element of the scalar gallop, probe for probe: exponential
/// widening then counted binary search, mutating the cursor exactly as
/// `scalar::gallop_counted` does. Probes at indices below `wend` are
/// known to fail (the caller's vector window showed those lanes `< x`)
/// and are charged without touching memory; pass `wend <= *lo` to make
/// every probe real.
#[inline(always)]
unsafe fn scalar_gallop_step<V: FnMut(u32)>(
    large: &[u32],
    x: u32,
    wend: usize,
    lo: &mut usize,
    cmps: &mut u64,
    matches: &mut u64,
    visit: &mut V,
) {
    let len = large.len();
    let mut step = 1usize;
    let mut hi = *lo;
    while hi < len {
        *cmps += 1;
        if hi >= wend && *large.get_unchecked(hi) >= x {
            break;
        }
        *lo = hi + 1;
        hi = *lo + step;
        step <<= 1;
    }
    let mut right = (hi + 1).min(len);
    while *lo < right {
        let mid = *lo + (right - *lo) / 2;
        *cmps += 1;
        match large.get_unchecked(mid).cmp(&x) {
            std::cmp::Ordering::Less => *lo = mid + 1,
            std::cmp::Ordering::Greater => right = mid,
            std::cmp::Ordering::Equal => {
                visit(x);
                *matches += 1;
                *lo = mid + 1;
                break;
            }
        }
    }
}

/// The gallop tier with a vector-probed frontier: for each element `x`
/// of the small side, one `W`-lane compare at the cursor classifies the
/// element. If the frontier lies inside the window (matches and
/// near-misses cluster on real adjacency lists), it is located with no
/// probe loop at all and the scalar probe sequence — all of it inside
/// the window — is charged arithmetically via
/// `scalar::gallop_probe_cost`. Otherwise every window lane is known
/// `< x`, so the genuine scalar gallop runs with its in-window probes
/// charged load-free ([`scalar_gallop_step`]). Monotone cursor, early
/// exit at the large side's end, identical matches/order/count to
/// `scalar::gallop_counted`.
#[inline(always)]
unsafe fn gallop_driver<const W: usize, V: FnMut(u32)>(
    a: &[u32],
    b: &[u32],
    visit: &mut V,
    lt_prefix: impl Fn(*const u32, u32) -> usize,
) -> (u64, u64) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let len = large.len();
    let mut matches = 0u64;
    let mut cmps = 0u64;
    let mut lo = 0usize;
    for &x in small {
        if lo + W <= len {
            let k = lt_prefix(large.as_ptr().add(lo), x);
            if k < W {
                // Frontier inside the window: f < lo + W <= len, and
                // the whole scalar probe sequence for a frontier this
                // close is a handful of arithmetic steps to replay.
                let f = lo + k;
                let matched = *large.get_unchecked(f) == x;
                cmps += scalar::gallop_probe_cost(lo, f, matched, len);
                if matched {
                    visit(x);
                    matches += 1;
                }
                lo = f + usize::from(matched);
            } else {
                scalar_gallop_step(large, x, lo + W, &mut lo, &mut cmps, &mut matches, visit);
            }
        } else {
            // Cursor within W of the end: plain scalar, every probe real.
            scalar_gallop_step(large, x, lo, &mut lo, &mut cmps, &mut matches, visit);
        }
        if lo >= len {
            break;
        }
    }
    (matches, cmps)
}

/// [`gallop_driver`] at 8 lanes.
#[target_feature(enable = "avx2")]
pub(super) unsafe fn gallop_avx2<V: FnMut(u32)>(a: &[u32], b: &[u32], visit: &mut V) -> (u64, u64) {
    gallop_driver::<8, V>(a, b, visit, |p, x| unsafe { lt_prefix_avx2(p, x) })
}

/// [`gallop_driver`] at 4 lanes.
pub(super) unsafe fn gallop_sse2<V: FnMut(u32)>(a: &[u32], b: &[u32], visit: &mut V) -> (u64, u64) {
    gallop_driver::<4, V>(a, b, visit, |p, x| unsafe { lt_prefix_sse2(p, x) })
}

#[cfg(test)]
mod tests {
    use super::super::scalar;
    use super::*;

    fn avx2() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    /// Dup-free sorted pseudo-random set over `[base, base + span)`.
    fn pseudo_set(seed: u64, len: usize, base: u32, span: u32) -> Vec<u32> {
        let mut x = seed | 1;
        let mut v: Vec<u32> = (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                base + (x >> 33) as u32 % span.max(1)
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    type Kernel = dyn Fn(&[u32], &[u32], &mut dyn FnMut(u32)) -> (u64, u64);

    fn run(f: &Kernel, a: &[u32], b: &[u32]) -> (u64, u64, Vec<u32>) {
        let mut out = Vec::new();
        let (m, c) = f(a, b, &mut |v| out.push(v));
        (m, c, out)
    }

    #[test]
    fn lane_prefix_helpers_count_unsigned() {
        // Values straddling the sign bit: unsigned order must hold.
        let w = [
            1u32,
            7,
            0x7fff_ffff,
            0x8000_0000,
            0xffff_fffe,
            u32::MAX,
            u32::MAX,
            u32::MAX,
        ];
        unsafe {
            assert_eq!(lt_prefix_sse2(w.as_ptr(), 0), 0);
            assert_eq!(lt_prefix_sse2(w.as_ptr(), 8), 2);
            assert_eq!(lt_prefix_sse2(w.as_ptr(), 0x8000_0000), 3);
            assert_eq!(lt_prefix_sse2(w.as_ptr(), u32::MAX), 4);
            if avx2() {
                assert_eq!(lt_prefix_avx2(w.as_ptr(), 0x8000_0001), 4);
                assert_eq!(lt_prefix_avx2(w.as_ptr(), u32::MAX), 5);
                assert_eq!(lt_prefix_avx2(w.as_ptr(), 7), 1);
            }
        }
    }

    #[test]
    fn block_merges_match_scalar_on_random_sets() {
        for seed in 0..50u64 {
            let a = pseudo_set(seed * 2 + 1, 8 + (seed as usize * 11) % 300, 0, 700);
            let b = pseudo_set(seed * 2 + 2, 8 + (seed as usize * 23) % 300, 0, 700);
            if a.len() < 8 || b.len() < 8 {
                continue;
            }
            let want = run(&|x, y, v| scalar::interleaved_counted(x, y, v), &a, &b);
            let sse = run(
                &|x, y, v| unsafe { merge_sse2(x, y, &mut |e| v(e)) },
                &a,
                &b,
            );
            assert_eq!(sse, want, "sse2 seed {seed}");
            if avx2() {
                let avx = run(
                    &|x, y, v| unsafe { merge_avx2(x, y, &mut |e| v(e)) },
                    &a,
                    &b,
                );
                assert_eq!(avx, want, "avx2 seed {seed}");
            }
        }
    }

    #[test]
    fn small_merge_matches_scalar_on_every_length_pair() {
        if !avx2() {
            return;
        }
        // Every (|a|, |b|) in 1..=8 × 1..=8, with values pushed across
        // the sign bit and up to u32::MAX so the own-max padding and
        // biased compares are exercised at the extremes.
        for la in 1..=8usize {
            for lb in 1..=8usize {
                for seed in 0..12u64 {
                    let base = [0u32, 0x7fff_fffd, 0xffff_ffd0][(seed % 3) as usize];
                    let mut a = pseudo_set(seed * 64 + la as u64, la, base, 24);
                    let mut b = pseudo_set(seed * 64 + 32 + lb as u64, lb, base, 24);
                    a.truncate(la.min(a.len()));
                    b.truncate(lb.min(b.len()));
                    let want = run(&|x, y, v| scalar::interleaved_counted(x, y, v), &a, &b);
                    let got = run(
                        &|x, y, v| unsafe { merge_avx2(x, y, &mut |e| v(e)) },
                        &a,
                        &b,
                    );
                    assert_eq!(got, want, "la={la} lb={lb} seed={seed} a={a:?} b={b:?}");
                }
            }
        }
    }

    #[test]
    fn vector_advance_matches_scalar_on_skewed_sets() {
        for seed in 0..50u64 {
            let a = pseudo_set(seed * 2 + 1, 4 + (seed as usize * 7) % 60, 0, 5000);
            let b = pseudo_set(seed * 2 + 2, 100 + (seed as usize * 31) % 900, 0, 5000);
            if a.is_empty() || b.is_empty() {
                continue;
            }
            let want = run(&|x, y, v| scalar::advance_counted(x, y, v), &a, &b);
            let sse = run(
                &|x, y, v| unsafe { advance_sse2(x, y, &mut |e| v(e)) },
                &a,
                &b,
            );
            assert_eq!(sse, want, "sse2 seed {seed}");
            if avx2() {
                let avx = run(
                    &|x, y, v| unsafe { advance_avx2(x, y, &mut |e| v(e)) },
                    &a,
                    &b,
                );
                assert_eq!(avx, want, "avx2 seed {seed}");
            }
        }
    }

    #[test]
    fn vector_gallop_matches_scalar_on_lopsided_sets() {
        for seed in 0..50u64 {
            let small = pseudo_set(seed * 2 + 1, 1 + (seed as usize * 5) % 30, 0, 50_000);
            let large = pseudo_set(seed * 2 + 2, 500 + (seed as usize * 37) % 2000, 0, 50_000);
            if small.is_empty() || large.is_empty() {
                continue;
            }
            let want = run(&|x, y, v| scalar::gallop_counted(x, y, v), &small, &large);
            let sse = run(
                &|x, y, v| unsafe { gallop_sse2(x, y, &mut |e| v(e)) },
                &small,
                &large,
            );
            assert_eq!(sse, want, "sse2 seed {seed}");
            if avx2() {
                let avx = run(
                    &|x, y, v| unsafe { gallop_avx2(x, y, &mut |e| v(e)) },
                    &small,
                    &large,
                );
                assert_eq!(avx, want, "avx2 seed {seed}");
            }
        }
    }
}
