//! Triangle output sinks.
//!
//! PDTL is a *listing* framework: the engine reports every triangle
//! `(u, v, w)` — cone vertex first, then the pivot edge — and the sink
//! decides what to do with it. Counting uses the zero-cost [`CountSink`]
//! (the paper's experiments measure counting "to allow comparison with
//! alternative implementations"); listing writes triples through
//! [`CollectSink`] or the buffered on-disk [`FileSink`], whose output
//! cost is the `T/B` term of Theorem IV.2.

use std::path::Path;
use std::sync::Arc;

use pdtl_io::{IoStats, Result, U32Writer};

/// Consumer of reported triangles.
pub trait TriangleSink {
    /// Called once per triangle, `u` the cone vertex, `(v, w)` the pivot
    /// edge (so `u ≺ v ≺ w` in the degree order).
    fn emit(&mut self, u: u32, v: u32, w: u32);

    /// Flush buffered output (no-op by default).
    fn flush(&mut self) -> Result<()> {
        Ok(())
    }
}

/// Counting-only sink: `emit` is a no-op the optimiser removes; the
/// engine's own counter carries the result.
#[derive(Debug, Default, Clone, Copy)]
pub struct CountSink;

impl TriangleSink for CountSink {
    #[inline(always)]
    fn emit(&mut self, _u: u32, _v: u32, _w: u32) {}
}

/// Collects triples in memory (tests, small graphs, analytics).
#[derive(Debug, Default, Clone)]
pub struct CollectSink {
    /// The collected triangles in emission order.
    pub triangles: Vec<(u32, u32, u32)>,
}

impl TriangleSink for CollectSink {
    fn emit(&mut self, u: u32, v: u32, w: u32) {
        self.triangles.push((u, v, w));
    }
}

/// Streams triples to a binary file (3 × `u32` little-endian per
/// triangle) through a counted writer.
#[derive(Debug)]
pub struct FileSink {
    writer: U32Writer,
    written: u64,
}

impl FileSink {
    /// Create a sink writing to `path`.
    pub fn create(path: impl AsRef<Path>, stats: Arc<IoStats>) -> Result<Self> {
        Ok(Self {
            writer: U32Writer::create(path, stats)?,
            written: 0,
        })
    }

    /// Triangles written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flush and close, returning the triangle count.
    pub fn finish(self) -> Result<u64> {
        self.writer.finish()?;
        Ok(self.written)
    }
}

impl TriangleSink for FileSink {
    fn emit(&mut self, u: u32, v: u32, w: u32) {
        // Buffered writes can only fail on flush; defer errors to
        // flush()/finish() to keep the hot path infallible.
        let _ = self.writer.write(u);
        let _ = self.writer.write(v);
        let _ = self.writer.write(w);
        self.written += 1;
    }

    fn flush(&mut self) -> Result<()> {
        Ok(())
    }
}

/// Read a [`FileSink`] file back as triples (verification helper).
pub fn read_triangle_file(
    path: impl AsRef<Path>,
    stats: Arc<IoStats>,
) -> Result<Vec<(u32, u32, u32)>> {
    let mut r = pdtl_io::U32Reader::open(path, stats)?;
    let vals = r.read_all()?;
    Ok(vals.chunks_exact(3).map(|c| (c[0], c[1], c[2])).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_sink_collects_in_order() {
        let mut s = CollectSink::default();
        s.emit(1, 2, 3);
        s.emit(4, 5, 6);
        assert_eq!(s.triangles, vec![(1, 2, 3), (4, 5, 6)]);
    }

    #[test]
    fn count_sink_is_noop() {
        let mut s = CountSink;
        s.emit(1, 2, 3);
        s.flush().unwrap();
    }

    #[test]
    fn file_sink_round_trips() {
        let dir = std::env::temp_dir().join("pdtl-sink-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("tri-{}", std::process::id()));
        let stats = IoStats::new();
        let mut s = FileSink::create(&path, stats.clone()).unwrap();
        s.emit(1, 2, 3);
        s.emit(7, 8, 9);
        assert_eq!(s.written(), 2);
        assert_eq!(s.finish().unwrap(), 2);
        let got = read_triangle_file(&path, stats.clone()).unwrap();
        assert_eq!(got, vec![(1, 2, 3), (7, 8, 9)]);
        // output IO is counted — the T/B term exists
        assert_eq!(stats.bytes_written(), 24);
    }
}
