//! Per-phase and per-worker measurement types.
//!
//! Everything the paper's evaluation reports — total time, calculation
//! time, per-core and per-node CPU/I-O breakdowns (Figures 6–8, Tables
//! III/IV/VII), modeled scaling curves — is assembled from these records.

use std::time::Duration;

use pdtl_io::stats::IoSnapshot;
use pdtl_io::{CostModel, ModeledTime, TimeBreakdown};

use crate::balance::EdgeRange;

/// Measurements of one sequential phase (orientation, load balancing,
/// aggregation).
#[derive(Debug, Clone, Default)]
pub struct PhaseReport {
    /// Wall time and CPU/I-O split of the phase.
    pub breakdown: TimeBreakdown,
    /// I/O performed by the phase.
    pub io: IoSnapshot,
    /// Elementary CPU operations counted by the phase.
    pub cpu_ops: u64,
    /// Threads the phase ran on.
    pub threads: usize,
}

impl PhaseReport {
    /// Deterministic modeled time of the phase under `cm`, with CPU work
    /// divided across the phase's threads.
    pub fn modeled(&self, cm: &CostModel) -> ModeledTime {
        ModeledTime {
            cpu: cm.cpu_seconds(self.cpu_ops) / self.threads.max(1) as f64,
            io: cm.io_seconds(self.io.total_bytes(), self.io.read_ops + self.io.write_ops),
            net: 0.0,
        }
    }
}

/// Measurements of one MGT worker (one logical processor).
#[derive(Debug, Clone)]
pub struct WorkerReport {
    /// Worker index within its node.
    pub worker: usize,
    /// The contiguous pivot-edge range the worker owned.
    pub range: EdgeRange,
    /// Triangles found in the range.
    pub triangles: u64,
    /// Chunk iterations performed (`R = ceil(S / cM)`).
    pub iterations: u64,
    /// Elementary CPU operations (array scans + intersection steps).
    pub cpu_ops: u64,
    /// The worker's I/O counters.
    pub io: IoSnapshot,
    /// The worker's wall time and CPU/I-O split.
    pub breakdown: TimeBreakdown,
}

impl WorkerReport {
    /// Deterministic modeled time under `cm`.
    pub fn modeled(&self, cm: &CostModel) -> ModeledTime {
        ModeledTime {
            cpu: cm.cpu_seconds(self.cpu_ops),
            io: cm.io_seconds(self.io.total_bytes(), self.io.read_ops + self.io.write_ops),
            net: 0.0,
        }
    }
}

/// The result of a full single-machine PDTL run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Exact triangle count.
    pub triangles: u64,
    /// Orientation phase measurements.
    pub orientation: PhaseReport,
    /// Load-balancing phase measurements.
    pub balancing: PhaseReport,
    /// One report per worker.
    pub workers: Vec<WorkerReport>,
    /// End-to-end wall time.
    pub wall: Duration,
}

impl RunReport {
    /// Calculation wall time: the struggler worker's wall time (the
    /// paper: "the calculation time of the 'struggler' node determines
    /// entirely the overall calculation time").
    pub fn calc_wall(&self) -> Duration {
        self.workers
            .iter()
            .map(|w| w.breakdown.wall)
            .max()
            .unwrap_or_default()
    }

    /// Modeled calculation time: max over workers (they run in
    /// parallel), compute and I/O overlapped within a worker.
    pub fn modeled_calc(&self, cm: &CostModel) -> f64 {
        self.workers
            .iter()
            .map(|w| w.modeled(cm).total_overlapped())
            .fold(0.0, f64::max)
    }

    /// Modeled total: orientation + balancing (sequential phases) + the
    /// parallel calculation.
    pub fn modeled_total(&self, cm: &CostModel) -> f64 {
        self.orientation.modeled(cm).total_overlapped()
            + self.balancing.modeled(cm).total_overlapped()
            + self.modeled_calc(cm)
    }

    /// Sum of all workers' I/O.
    pub fn total_worker_io(&self) -> IoSnapshot {
        let mut acc = IoSnapshot::default();
        for w in &self.workers {
            acc.bytes_read += w.io.bytes_read;
            acc.bytes_written += w.io.bytes_written;
            acc.read_ops += w.io.read_ops;
            acc.write_ops += w.io.write_ops;
            acc.seeks += w.io.seeks;
            acc.io_time += w.io.io_time;
        }
        acc
    }

    /// Sum of all workers' CPU operations.
    pub fn total_cpu_ops(&self) -> u64 {
        self.workers.iter().map(|w| w.cpu_ops).sum()
    }

    /// Sum of per-worker iteration counts.
    pub fn total_iterations(&self) -> u64 {
        self.workers.iter().map(|w| w.iterations).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn worker(wall_ms: u64, cpu_ops: u64, tri: u64) -> WorkerReport {
        WorkerReport {
            worker: 0,
            range: EdgeRange { start: 0, end: 10 },
            triangles: tri,
            iterations: 1,
            cpu_ops,
            io: IoSnapshot {
                bytes_read: 1000,
                read_ops: 2,
                ..Default::default()
            },
            breakdown: TimeBreakdown {
                wall: Duration::from_millis(wall_ms),
                io: Duration::from_millis(wall_ms / 4),
            },
        }
    }

    fn report() -> RunReport {
        RunReport {
            triangles: 12,
            orientation: PhaseReport {
                cpu_ops: 1_000_000,
                threads: 2,
                ..Default::default()
            },
            balancing: PhaseReport::default(),
            workers: vec![worker(10, 5_000_000, 4), worker(30, 20_000_000, 8)],
            wall: Duration::from_millis(50),
        }
    }

    #[test]
    fn calc_wall_is_struggler() {
        assert_eq!(report().calc_wall(), Duration::from_millis(30));
    }

    #[test]
    fn modeled_calc_is_max_over_workers() {
        let r = report();
        let cm = CostModel::default();
        let slow = r.workers[1].modeled(&cm).total_overlapped();
        assert!((r.modeled_calc(&cm) - slow).abs() < 1e-12);
    }

    #[test]
    fn modeled_total_includes_phases() {
        let r = report();
        let cm = CostModel::default();
        assert!(r.modeled_total(&cm) > r.modeled_calc(&cm));
    }

    #[test]
    fn phase_modeled_divides_cpu_by_threads() {
        let p = PhaseReport {
            cpu_ops: 200_000_000, // 1 second at the default rate
            threads: 4,
            ..Default::default()
        };
        let cm = CostModel::default();
        assert!((p.modeled(&cm).cpu - 0.25).abs() < 1e-9);
    }

    #[test]
    fn totals_aggregate_workers() {
        let r = report();
        assert_eq!(r.total_cpu_ops(), 25_000_000);
        assert_eq!(r.total_worker_io().bytes_read, 2000);
        assert_eq!(r.total_iterations(), 2);
    }

    #[test]
    fn empty_workers_degenerate() {
        let r = RunReport {
            triangles: 0,
            orientation: PhaseReport::default(),
            balancing: PhaseReport::default(),
            workers: vec![],
            wall: Duration::ZERO,
        };
        assert_eq!(r.calc_wall(), Duration::ZERO);
        assert_eq!(r.modeled_calc(&CostModel::default()), 0.0);
    }
}
