//! Load balancing: contiguous pivot-edge ranges per processor.
//!
//! PDTL assigns each of the `N·P` logical processors a *contiguous* range
//! of oriented adjacency positions; a processor finds exactly the
//! triangles whose pivot edge lies in its range, so ranges partition the
//! work with no duplication (Section IV-B).
//!
//! Two strategies, matching the paper's Figure 9 comparison:
//!
//! * [`BalanceStrategy::EqualEdges`] — the naive split: every processor
//!   gets `|E*| / NP` positions.
//! * [`BalanceStrategy::InDegree`] — the paper's load balancer:
//!   *"calculates the number of in-edges for each vertex after
//!   orientation (equal to d(v) − d*(v)), and splits the edges … so the
//!   sum of these in-degrees are approximately the same among all
//!   processors. This provides an estimate for the average size of
//!   N⁺(u), and thus the number of required intersections."* The work a
//!   resident pivot edge `(v, w)` causes is one intersection per
//!   in-neighbour of `v`, so a vertex's cost weight is `in(v)` spread
//!   over its `d*(v)` resident positions (plus a small per-position term
//!   for the scan itself).

use crate::metrics::PhaseReport;
use pdtl_io::TimeBreakdown;
use std::time::Instant;

/// A contiguous half-open range of oriented adjacency positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRange {
    /// First position (inclusive).
    pub start: u64,
    /// One past the last position.
    pub end: u64,
}

impl EdgeRange {
    /// Number of positions in the range.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// True when the range is empty.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// How to split the oriented adjacency across processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BalanceStrategy {
    /// Naive equal-position split (the paper's "w/o load balancing").
    EqualEdges,
    /// In-degree-weighted split (the paper's load balancer; default).
    #[default]
    InDegree,
}

/// Per-position weight of the scan itself, relative to one intersection
/// unit. Keeps ranges finite on vertices with `in(v) = 0`.
const SCAN_WEIGHT: f64 = 0.125;

/// Split `m* = offsets[n]` oriented positions into `parts` contiguous
/// ranges under `strategy`.
///
/// `offsets` are the oriented CSR offsets; `in_degrees` the
/// post-orientation in-degrees (ignored for `EqualEdges`). Ranges cover
/// `[0, m*)` exactly, in order, possibly empty at the tail for tiny
/// graphs.
pub fn split_ranges(
    offsets: &[u64],
    in_degrees: &[u32],
    parts: usize,
    strategy: BalanceStrategy,
) -> (Vec<EdgeRange>, PhaseReport) {
    let start = Instant::now();
    let parts = parts.max(1);
    let m_star = *offsets.last().unwrap();
    let ranges = match strategy {
        BalanceStrategy::EqualEdges => equal_split(m_star, parts),
        BalanceStrategy::InDegree => weighted_split(offsets, in_degrees, parts),
    };
    let n = offsets.len() as u64 - 1;
    let report = PhaseReport {
        breakdown: TimeBreakdown {
            wall: start.elapsed(),
            io: std::time::Duration::ZERO,
        },
        io: Default::default(),
        // One pass over the degree arrays plus the split search.
        cpu_ops: match strategy {
            BalanceStrategy::EqualEdges => parts as u64,
            BalanceStrategy::InDegree => n + parts as u64,
        },
        threads: 1,
    };
    (ranges, report)
}

fn equal_split(m_star: u64, parts: usize) -> Vec<EdgeRange> {
    (0..parts as u64)
        .map(|i| EdgeRange {
            start: m_star * i / parts as u64,
            end: m_star * (i + 1) / parts as u64,
        })
        .collect()
}

fn weighted_split(offsets: &[u64], in_degrees: &[u32], parts: usize) -> Vec<EdgeRange> {
    let n = offsets.len() - 1;
    debug_assert_eq!(in_degrees.len(), n);
    let m_star = *offsets.last().unwrap();
    if m_star == 0 {
        return vec![EdgeRange { start: 0, end: 0 }; parts];
    }

    // Cumulative weight at each vertex boundary. A vertex with d*(v)
    // positions carries total weight in(v) + SCAN_WEIGHT * d*(v),
    // distributed uniformly over its positions.
    let mut cum = Vec::with_capacity(n + 1);
    cum.push(0.0f64);
    let mut acc = 0.0f64;
    for v in 0..n {
        let d_star = (offsets[v + 1] - offsets[v]) as f64;
        if d_star > 0.0 {
            acc += in_degrees[v] as f64 + SCAN_WEIGHT * d_star;
        }
        cum.push(acc);
    }
    let total = acc;
    if total <= 0.0 {
        return equal_split(m_star, parts);
    }

    let mut ranges = Vec::with_capacity(parts);
    let mut prev_pos = 0u64;
    for i in 1..=parts {
        let target = total * i as f64 / parts as f64;
        let pos = if i == parts {
            m_star
        } else {
            position_at_weight(offsets, &cum, target).max(prev_pos)
        };
        ranges.push(EdgeRange {
            start: prev_pos,
            end: pos,
        });
        prev_pos = pos;
    }
    ranges
}

/// The adjacency position at cumulative weight `target`: find the vertex
/// whose weight interval contains it, then interpolate within its
/// positions.
fn position_at_weight(offsets: &[u64], cum: &[f64], target: f64) -> u64 {
    let v = match cum.binary_search_by(|c| c.partial_cmp(&target).unwrap()) {
        Ok(i) => i,
        Err(i) => i.saturating_sub(1),
    }
    .min(cum.len() - 2);
    let d_star = offsets[v + 1] - offsets[v];
    if d_star == 0 {
        return offsets[v];
    }
    let w_v = cum[v + 1] - cum[v];
    let frac = if w_v > 0.0 {
        ((target - cum[v]) / w_v).clamp(0.0, 1.0)
    } else {
        0.0
    };
    offsets[v] + (frac * d_star as f64).round() as u64
}

/// The modeled work units of a range under the in-degree cost model —
/// used by tests and experiments to quantify balance quality.
pub fn range_weight(offsets: &[u64], in_degrees: &[u32], range: EdgeRange) -> f64 {
    let n = offsets.len() - 1;
    let mut acc = 0.0f64;
    for v in 0..n {
        let (lo, hi) = (offsets[v], offsets[v + 1]);
        if lo == hi || hi <= range.start || lo >= range.end {
            continue;
        }
        let d_star = (hi - lo) as f64;
        let overlap = (hi.min(range.end) - lo.max(range.start)) as f64;
        acc += (in_degrees[v] as f64 + SCAN_WEIGHT * d_star) * overlap / d_star;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orient::orient_csr;
    use pdtl_graph::gen::rmat::rmat;

    fn check_partition(ranges: &[EdgeRange], m_star: u64) {
        assert_eq!(ranges.first().unwrap().start, 0);
        assert_eq!(ranges.last().unwrap().end, m_star);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "contiguous, disjoint");
        }
    }

    #[test]
    fn equal_split_partitions_exactly() {
        for parts in [1usize, 2, 3, 7, 64] {
            let (ranges, _) = split_ranges(&[0, 100], &[0], parts, BalanceStrategy::EqualEdges);
            check_partition(&ranges, 100);
            let max = ranges.iter().map(|r| r.len()).max().unwrap();
            let min = ranges.iter().map(|r| r.len()).min().unwrap();
            assert!(max - min <= 1, "equal split is equal");
        }
    }

    #[test]
    fn weighted_split_partitions_exactly() {
        let g = rmat(8, 1).unwrap();
        let o = orient_csr(&g);
        let ins = o.in_degrees();
        for parts in [1usize, 2, 4, 16] {
            let (ranges, _) = split_ranges(&o.offsets, &ins, parts, BalanceStrategy::InDegree);
            assert_eq!(ranges.len(), parts);
            check_partition(&ranges, o.m_star());
        }
    }

    #[test]
    fn weighted_split_balances_weight_better_than_naive_on_skewed_graph() {
        let g = rmat(10, 2).unwrap();
        let o = orient_csr(&g);
        let ins = o.in_degrees();
        let parts = 8;
        let (naive, _) = split_ranges(&o.offsets, &ins, parts, BalanceStrategy::EqualEdges);
        let (smart, _) = split_ranges(&o.offsets, &ins, parts, BalanceStrategy::InDegree);
        let spread = |rs: &[EdgeRange]| {
            let ws: Vec<f64> = rs
                .iter()
                .map(|&r| range_weight(&o.offsets, &ins, r))
                .collect();
            let max = ws.iter().cloned().fold(0.0, f64::max);
            let avg = ws.iter().sum::<f64>() / ws.len() as f64;
            max / avg
        };
        let (sn, ss) = (spread(&naive), spread(&smart));
        assert!(
            ss <= sn + 1e-9,
            "balanced split must not be worse: naive {sn}, balanced {ss}"
        );
        assert!(ss < 1.5, "balanced spread should be close to 1, got {ss}");
    }

    #[test]
    fn range_weights_sum_to_total() {
        let g = rmat(7, 3).unwrap();
        let o = orient_csr(&g);
        let ins = o.in_degrees();
        let (ranges, _) = split_ranges(&o.offsets, &ins, 5, BalanceStrategy::InDegree);
        let sum: f64 = ranges
            .iter()
            .map(|&r| range_weight(&o.offsets, &ins, r))
            .sum();
        let full = range_weight(
            &o.offsets,
            &ins,
            EdgeRange {
                start: 0,
                end: o.m_star(),
            },
        );
        assert!((sum - full).abs() < 1e-6 * full.max(1.0));
    }

    #[test]
    fn more_parts_than_edges() {
        let (ranges, _) = split_ranges(&[0, 2], &[0], 5, BalanceStrategy::EqualEdges);
        check_partition(&ranges, 2);
        assert!(ranges.iter().filter(|r| !r.is_empty()).count() <= 2);
    }

    #[test]
    fn empty_graph_yields_empty_ranges() {
        for strategy in [BalanceStrategy::EqualEdges, BalanceStrategy::InDegree] {
            let (ranges, _) = split_ranges(&[0, 0, 0], &[0, 0], 3, strategy);
            assert_eq!(ranges.len(), 3);
            assert!(ranges.iter().all(|r| r.is_empty()));
        }
    }

    #[test]
    fn phase_report_counts_work() {
        let g = rmat(6, 4).unwrap();
        let o = orient_csr(&g);
        let ins = o.in_degrees();
        let (_, report) = split_ranges(&o.offsets, &ins, 4, BalanceStrategy::InDegree);
        assert!(report.cpu_ops as usize >= ins.len());
    }
}
