//! The paper's complexity bounds as executable formulas.
//!
//! Theorem IV.2 (MGT) and Theorem IV.3 (PDTL) give closed-form bounds on
//! I/O, CPU and network work. Encoding them lets the test suite assert
//! that *measured* work stays within a constant of the *proven* bound —
//! the strongest reproducibility check available for an asymptotic claim
//! — and lets experiments print predicted-vs-measured columns.

/// Upper bound on arboricity: `α ≤ ⌈√|E|⌉` (Theorem III.4(1)).
pub fn arboricity_upper_bound(m: u64) -> u64 {
    (m as f64).sqrt().ceil() as u64
}

/// Theorem IV.2 (I/O): `O(|E|² / (M·B) + T/B)` — expressed in bytes with
/// 4-byte edge entries so it can be compared against counted bytes.
/// Returns the bound's dominant terms (not the constant).
pub fn mgt_io_bound_bytes(m: u64, mem_edges: u64, t_listed: u64) -> u64 {
    let h = m.div_ceil(mem_edges.max(1)); // graph scans
    h * m * 4 + t_listed * 12
}

/// Theorem IV.2 (CPU): `O(|E|²/M + α|E|)` in elementary operations.
pub fn mgt_cpu_bound_ops(m: u64, mem_edges: u64, alpha: u64) -> u64 {
    let h = m.div_ceil(mem_edges.max(1));
    h * m + alpha * m
}

/// Theorem IV.3 (total I/O over all cores):
/// `O(NP·|E|/B + |E|²/(M·B) + T/B)`, in bytes.
pub fn pdtl_io_bound_bytes(nodes: u64, cores: u64, m: u64, mem_edges: u64, t_listed: u64) -> u64 {
    nodes * cores * m * 4 + mgt_io_bound_bytes(m, mem_edges, t_listed)
}

/// Theorem IV.3 (total CPU over all cores):
/// `O(NP·|E| + |E|²/M + α|E|)`.
pub fn pdtl_cpu_bound_ops(nodes: u64, cores: u64, m: u64, mem_edges: u64, alpha: u64) -> u64 {
    nodes * cores * m + mgt_cpu_bound_ops(m, mem_edges, alpha)
}

/// Theorem IV.3 (network): `Θ(NP + N|E| + T)` in bytes (edge entries are
/// 4 bytes, triangles 12, per-processor configuration ~64).
pub fn pdtl_network_bound_bytes(nodes: u64, cores: u64, m: u64, t_listed: u64) -> u64 {
    nodes * cores * 64 + nodes * m * 4 + t_listed * 12
}

/// The ordering lemma (Theorem IV.1): `Σ_v d(v)·d*(v) = O(α|E|)`.
/// Computes the left-hand side exactly from the two degree arrays.
pub fn ordering_sum(degrees: &[u32], d_star: &[u32]) -> u64 {
    degrees
        .iter()
        .zip(d_star)
        .map(|(&d, &ds)| d as u64 * ds as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orient::orient_csr;
    use pdtl_graph::gen::classic::{complete, grid};
    use pdtl_graph::gen::rmat::rmat;

    #[test]
    fn arboricity_bound_monotone() {
        assert_eq!(arboricity_upper_bound(0), 0);
        assert_eq!(arboricity_upper_bound(1), 1);
        assert_eq!(arboricity_upper_bound(100), 10);
        assert_eq!(arboricity_upper_bound(101), 11);
    }

    #[test]
    fn ordering_lemma_holds_on_real_graphs() {
        // Σ d(v)·d*(v) ≤ Σ_(u,v)∈E min(d(u), d(v)) — the exact inequality
        // from the proof of Theorem IV.1.
        for (g, tag) in [
            (rmat(8, 31).unwrap(), "rmat"),
            (complete(20).unwrap(), "k20"),
            (grid(12, 12).unwrap(), "grid"),
        ] {
            let o = orient_csr(&g);
            let d_star: Vec<u32> = (0..o.num_vertices()).map(|v| o.d_star(v)).collect();
            let lhs = ordering_sum(&o.orig_degrees, &d_star);
            let rhs = g.min_degree_sum();
            assert!(lhs <= rhs, "{tag}: {lhs} > {rhs}");
        }
    }

    #[test]
    fn ordering_sum_within_arboricity_bound() {
        // Theorem III.4(3): Σ min(d(u),d(v)) = O(α|E|) with a modest
        // constant; check lhs ≤ 4·α̂·|E| using the √m upper bound on α.
        let g = rmat(9, 32).unwrap();
        let o = orient_csr(&g);
        let d_star: Vec<u32> = (0..o.num_vertices()).map(|v| o.d_star(v)).collect();
        let lhs = ordering_sum(&o.orig_degrees, &d_star);
        let m = g.num_edges();
        assert!(lhs <= 4 * arboricity_upper_bound(m) * m);
    }

    #[test]
    fn io_bound_shrinks_with_memory() {
        let small_m = mgt_io_bound_bytes(1_000_000, 1_000, 0);
        let big_m = mgt_io_bound_bytes(1_000_000, 1_000_000, 0);
        assert!(small_m > big_m);
        // listing adds the T/B term
        assert!(mgt_io_bound_bytes(1000, 1000, 500) > mgt_io_bound_bytes(1000, 1000, 0));
    }

    #[test]
    fn pdtl_bounds_scale_with_cluster() {
        let one = pdtl_io_bound_bytes(1, 1, 1_000_000, 10_000, 0);
        let four = pdtl_io_bound_bytes(4, 8, 1_000_000, 10_000, 0);
        assert!(four > one);
        let net1 = pdtl_network_bound_bytes(1, 8, 1_000_000, 0);
        let net4 = pdtl_network_bound_bytes(4, 8, 1_000_000, 0);
        // graph duplication dominates: ~4x network for 4 nodes
        assert!(net4 > 3 * net1 && net4 < 5 * net1);
    }

    #[test]
    fn cpu_bound_has_both_terms() {
        // tiny memory -> quadratic term dominates
        let tight = pdtl_cpu_bound_ops(1, 1, 1_000_000, 100, 10);
        // huge memory -> arboricity term dominates
        let loose = pdtl_cpu_bound_ops(1, 1, 1_000_000, u64::MAX / 2, 10);
        assert!(tight > loose);
        assert!(loose >= 10 * 1_000_000);
    }
}
