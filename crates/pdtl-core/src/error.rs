//! Error type for the PDTL core.

use std::fmt;

/// Result alias for core operations.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised by orientation, balancing and the MGT engine.
#[derive(Debug)]
pub enum CoreError {
    /// Underlying I/O substrate failure.
    Io(pdtl_io::IoError),
    /// Underlying graph substrate failure.
    Graph(pdtl_graph::GraphError),
    /// An invalid configuration (zero cores, empty range set, …).
    Config(String),
    /// A worker thread panicked.
    WorkerPanic(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Io(e) => write!(f, "io: {e}"),
            CoreError::Graph(e) => write!(f, "graph: {e}"),
            CoreError::Config(msg) => write!(f, "configuration: {msg}"),
            CoreError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Io(e) => Some(e),
            CoreError::Graph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<pdtl_io::IoError> for CoreError {
    fn from(e: pdtl_io::IoError) -> Self {
        CoreError::Io(e)
    }
}

impl From<pdtl_graph::GraphError> for CoreError {
    fn from(e: pdtl_graph::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_converts() {
        let e: CoreError = pdtl_io::IoError::malformed("/f", "x").into();
        assert!(e.to_string().contains("io:"));
        let e: CoreError = pdtl_graph::GraphError::Invalid("y".into()).into();
        assert!(e.to_string().contains("graph:"));
        assert!(CoreError::Config("no cores".into())
            .to_string()
            .contains("no cores"));
    }
}
