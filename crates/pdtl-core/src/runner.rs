//! The single-machine multicore runner.
//!
//! Wires the pipeline together for one machine with `P` logical
//! processors (the paper's Local Multicore configuration): parallel
//! orientation → load balancing → one MGT worker per core over its
//! contiguous range → atomic aggregation. Workers are long-lived
//! `std::thread`s, each owning its file handles, scratch arrays, I/O
//! counters and sink — per-worker state, not data-parallel iteration,
//! which is why this uses scoped threads rather than rayon.

use std::path::{Path, PathBuf};
use std::time::Instant;

use pdtl_graph::{DiskGraph, Graph};
use pdtl_io::{IoStats, MemoryBudget};

use crate::balance::{split_ranges, BalanceStrategy};
use crate::error::{CoreError, Result};
use crate::metrics::RunReport;
use crate::mgt::{mgt_count_range_opt, MgtOptions};
use crate::orient::orient_to_disk_with;
use crate::sink::{CollectSink, CountSink};

/// Configuration of a single-machine run.
#[derive(Debug, Clone)]
pub struct LocalConfig {
    /// Logical processors `P`.
    pub cores: usize,
    /// Memory budget per processor (the paper's `M`).
    pub budget: MemoryBudget,
    /// Range-splitting strategy.
    pub balance: BalanceStrategy,
    /// MGT engine knobs (scan pruning, overlapped I/O); defaults to
    /// everything on.
    pub mgt: MgtOptions,
}

impl Default for LocalConfig {
    fn default() -> Self {
        Self {
            cores: 4,
            budget: MemoryBudget::default(),
            balance: BalanceStrategy::InDegree,
            mgt: MgtOptions::default(),
        }
    }
}

/// Single-machine PDTL runner.
#[derive(Debug, Clone)]
pub struct LocalRunner {
    config: LocalConfig,
}

impl LocalRunner {
    /// Build a runner from `config`.
    pub fn new(config: LocalConfig) -> Result<Self> {
        if config.cores == 0 {
            return Err(CoreError::Config("cores must be >= 1".into()));
        }
        Ok(Self { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &LocalConfig {
        &self.config
    }

    /// Count all triangles of the undirected PDTL-format graph at
    /// `input`, using `work_dir` for the oriented copy.
    pub fn run(&self, input: &DiskGraph, work_dir: &Path) -> Result<RunReport> {
        self.run_with_sinks(input, work_dir, || CountSink)
            .map(|(report, _)| report)
    }

    /// Count and also *list* triangles: returns the report plus each
    /// worker's collected triples (cone vertex first).
    #[allow(clippy::type_complexity)]
    pub fn run_listing(
        &self,
        input: &DiskGraph,
        work_dir: &Path,
    ) -> Result<(RunReport, Vec<(u32, u32, u32)>)> {
        let (report, sinks) = self.run_with_sinks(input, work_dir, CollectSink::default)?;
        let mut all = Vec::new();
        for s in sinks {
            all.extend(s.triangles);
        }
        Ok((report, all))
    }

    /// Generic driver: one sink per worker, built by `make_sink`.
    pub fn run_with_sinks<S, F>(
        &self,
        input: &DiskGraph,
        work_dir: &Path,
        make_sink: F,
    ) -> Result<(RunReport, Vec<S>)>
    where
        S: crate::sink::TriangleSink + Send,
        F: Fn() -> S,
    {
        std::fs::create_dir_all(work_dir)
            .map_err(|e| pdtl_io::IoError::os("mkdir", work_dir, e))?;
        // Full-digest the input against its integrity manifest before
        // spending any compute on it: the quick tier inside
        // `DiskGraph::open` cannot see a bit flip deep in a large
        // `.adj`, and the invariant is that corruption is *detected*,
        // never counted. Pre-integrity inputs (no manifest) skip this.
        input.verify_full()?;
        let wall_start = Instant::now();
        let master_stats = IoStats::new();

        // Phase 1: multicore orientation (Figure 2).
        let oriented_base = work_dir.join("oriented");
        let (og, orientation) = orient_to_disk_with(
            input,
            &oriented_base,
            self.config.cores,
            self.config.mgt.codec,
            &master_stats,
        )?;

        let (mut report, sinks) = self.run_oriented_with_sinks(&og, make_sink)?;
        report.orientation = orientation;
        report.wall = wall_start.elapsed();
        Ok((report, sinks))
    }

    /// Phases 2–3 against an *already-oriented* graph: load balancing
    /// plus one MGT worker per core, skipping the orientation phase.
    ///
    /// This is the resident-process entry point (`pdtl serve` runs it
    /// once per query against a catalog graph oriented at registration):
    /// it holds no scratch state, touches only the oriented files
    /// read-only, and every failure returns as a typed error rather
    /// than tearing the process down. The returned report's
    /// `orientation` phase is zeroed — orientation was paid by whoever
    /// produced `og`.
    ///
    /// When `og` was reopened from disk (no recorded original degrees),
    /// an `InDegree` balance request degrades to `EqualEdges` rather
    /// than failing: the split is an optimization, not a correctness
    /// requirement.
    pub fn run_oriented_with_sinks<S, F>(
        &self,
        og: &crate::orient::OrientedGraph,
        make_sink: F,
    ) -> Result<(RunReport, Vec<S>)>
    where
        S: crate::sink::TriangleSink + Send,
        F: Fn() -> S,
    {
        let wall_start = Instant::now();

        // Phase 2: load balancing (Section IV-B1).
        let (ranges, balancing) = match (self.config.balance, og.in_degrees()) {
            (BalanceStrategy::InDegree, Some(in_degrees)) => split_ranges(
                &og.offsets,
                &in_degrees,
                self.config.cores,
                BalanceStrategy::InDegree,
            ),
            _ => {
                let zeros = vec![0u32; og.num_vertices() as usize];
                split_ranges(
                    &og.offsets,
                    &zeros,
                    self.config.cores,
                    BalanceStrategy::EqualEdges,
                )
            }
        };

        // Phase 3: one MGT worker per core.
        let budget = self.config.budget;
        let mgt_opts = self.config.mgt;
        let mut results: Vec<Option<Result<(crate::metrics::WorkerReport, S)>>> =
            (0..ranges.len()).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (i, &range) in ranges.iter().enumerate() {
                let mut sink = make_sink();
                handles.push(scope.spawn(move || {
                    let stats = IoStats::new();
                    mgt_count_range_opt(og, range, budget, &mut sink, stats, mgt_opts).map(
                        |mut r| {
                            r.worker = i;
                            (r, sink)
                        },
                    )
                }));
            }
            for (i, h) in handles.into_iter().enumerate() {
                results[i] = Some(
                    h.join()
                        .unwrap_or_else(|_| Err(CoreError::WorkerPanic(format!("worker {i}")))),
                );
            }
        });

        let mut workers = Vec::with_capacity(results.len());
        let mut sinks = Vec::with_capacity(results.len());
        let mut triangles = 0u64;
        for r in results.into_iter().flatten() {
            let (w, s) = r?;
            triangles += w.triangles;
            workers.push(w);
            sinks.push(s);
        }

        Ok((
            RunReport {
                triangles,
                orientation: crate::metrics::PhaseReport::default(),
                balancing,
                workers,
                wall: wall_start.elapsed(),
            },
            sinks,
        ))
    }
}

/// Convenience: count the triangles of an in-memory [`Graph`] with the
/// full PDTL disk pipeline in a temporary directory.
pub fn count_triangles(g: &Graph) -> Result<RunReport> {
    count_triangles_with(g, LocalConfig::default())
}

/// A scratch directory that removes itself on drop, so every exit path
/// — including the `?` returns between creation and success — cleans up
/// the scratch space. Long-lived processes (the CLI loop, `pdtl serve`)
/// lean on this so a *failed* run never accumulates temp state.
#[derive(Debug)]
pub struct ScratchDir(PathBuf);

impl ScratchDir {
    /// Create `path` (and parents) and adopt it: the directory is
    /// removed when the guard drops.
    pub fn create(path: impl Into<PathBuf>) -> Result<Self> {
        let path = path.into();
        std::fs::create_dir_all(&path).map_err(|e| pdtl_io::IoError::os("mkdir", &path, e))?;
        Ok(Self(path))
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// [`count_triangles`] with an explicit configuration.
///
/// The one-call entry point to the full disk pipeline: write the graph
/// in PDTL binary format, orient it into rank space, split the oriented
/// adjacency across `cores` workers, run the MGT engine per range
/// through the configured [I/O backend](pdtl_io::IoBackend), and
/// aggregate the per-worker reports. Scratch files live in a temporary
/// directory that is removed on every exit path.
///
/// ```
/// use pdtl_core::{count_triangles_with, LocalConfig, MgtOptions};
/// use pdtl_graph::gen::classic::complete;
/// use pdtl_io::{IoBackend, MemoryBudget};
///
/// let g = complete(20).unwrap();
/// let report = count_triangles_with(
///     &g,
///     LocalConfig {
///         cores: 2,
///         budget: MemoryBudget::edges(64), // far below |E*|: multi-pass
///         mgt: MgtOptions {
///             backend: IoBackend::Uring, // degrades to prefetch if absent
///             ..MgtOptions::default()
///         },
///         ..LocalConfig::default()
///     },
/// )
/// .unwrap();
/// assert_eq!(report.triangles, 1140); // C(20, 3)
/// assert_eq!(report.workers.len(), 2);
/// ```
pub fn count_triangles_with(g: &Graph, config: LocalConfig) -> Result<RunReport> {
    static UNIQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let id = UNIQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir: PathBuf = std::env::temp_dir().join(format!("pdtl-count-{}-{id}", std::process::id()));
    let scratch = ScratchDir::create(&dir)?;
    let stats = IoStats::new();
    let input = DiskGraph::write(g, scratch.path().join("input"), &stats)?;
    let report = LocalRunner::new(config)?.run(&input, scratch.path())?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pdtl_graph::gen::classic::{complete, wheel};
    use pdtl_graph::gen::rmat::rmat;
    use pdtl_graph::verify::triangle_count;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("pdtl-runner-tests")
            .join(format!("{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn counts_match_oracle_across_cores() {
        let g = rmat(8, 21).unwrap();
        let expected = triangle_count(&g);
        let stats = IoStats::new();
        let input = DiskGraph::write(&g, tmpdir("cores").join("g"), &stats).unwrap();
        for cores in [1usize, 2, 3, 8] {
            let runner = LocalRunner::new(LocalConfig {
                cores,
                budget: MemoryBudget::edges(2048),
                balance: BalanceStrategy::InDegree,
                ..Default::default()
            })
            .unwrap();
            let report = runner
                .run(&input, &tmpdir(&format!("cores-{cores}")))
                .unwrap();
            assert_eq!(report.triangles, expected, "cores {cores}");
            assert_eq!(report.workers.len(), cores);
        }
    }

    #[test]
    fn both_balance_strategies_agree() {
        let g = rmat(8, 22).unwrap();
        let expected = triangle_count(&g);
        let stats = IoStats::new();
        let input = DiskGraph::write(&g, tmpdir("bal").join("g"), &stats).unwrap();
        for strategy in [BalanceStrategy::EqualEdges, BalanceStrategy::InDegree] {
            let runner = LocalRunner::new(LocalConfig {
                cores: 4,
                budget: MemoryBudget::edges(1024),
                balance: strategy,
                ..Default::default()
            })
            .unwrap();
            let report = runner
                .run(&input, &tmpdir(&format!("bal-{strategy:?}")))
                .unwrap();
            assert_eq!(report.triangles, expected, "{strategy:?}");
        }
    }

    #[test]
    fn listing_collects_all_triangles() {
        let g = wheel(20).unwrap();
        let stats = IoStats::new();
        let input = DiskGraph::write(&g, tmpdir("list").join("g"), &stats).unwrap();
        let runner = LocalRunner::new(LocalConfig {
            cores: 3,
            budget: MemoryBudget::edges(16),
            balance: BalanceStrategy::InDegree,
            ..Default::default()
        })
        .unwrap();
        let (report, triangles) = runner.run_listing(&input, &tmpdir("list-run")).unwrap();
        assert_eq!(report.triangles, 19);
        assert_eq!(triangles.len(), 19);
        let mut canon: Vec<_> = triangles
            .iter()
            .map(|&(a, b, c)| {
                let mut t = [a, b, c];
                t.sort_unstable();
                (t[0], t[1], t[2])
            })
            .collect();
        canon.sort_unstable();
        canon.dedup();
        assert_eq!(canon.len(), 19, "no duplicates across workers");
    }

    #[test]
    fn run_oriented_matches_full_pipeline() {
        // The resident-process entry: orienting once and running
        // `run_oriented_with_sinks` repeatedly yields the same count as
        // the one-shot path, including on a *reopened* graph whose
        // original degrees are gone (InDegree degrades to EqualEdges).
        let g = rmat(8, 24).unwrap();
        let expected = triangle_count(&g);
        let dir = tmpdir("oriented-entry");
        let stats = IoStats::new();
        let input = DiskGraph::write(&g, dir.join("g"), &stats).unwrap();
        let (og, _) =
            orient_to_disk_with(&input, dir.join("oriented"), 2, Default::default(), &stats)
                .unwrap();
        let runner = LocalRunner::new(LocalConfig {
            cores: 3,
            budget: MemoryBudget::edges(512),
            ..Default::default()
        })
        .unwrap();
        for _ in 0..3 {
            let (report, _) = runner.run_oriented_with_sinks(&og, || CountSink).unwrap();
            assert_eq!(report.triangles, expected);
            assert_eq!(report.workers.len(), 3);
        }
        // Reopen from disk: orig_degrees is None, the split degrades.
        let reopened = crate::orient::OrientedGraph::open(og.disk.base(), &stats).unwrap();
        assert!(reopened.in_degrees().is_none());
        let (report, _) = runner
            .run_oriented_with_sinks(&reopened, || CountSink)
            .unwrap();
        assert_eq!(report.triangles, expected);
    }

    #[test]
    fn scratch_dir_removes_itself_on_drop() {
        let dir = std::env::temp_dir().join(format!("pdtl-scratch-test-{}", std::process::id()));
        {
            let s = ScratchDir::create(&dir).unwrap();
            std::fs::write(s.path().join("junk"), b"x").unwrap();
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "guard must remove the directory");
    }

    #[test]
    fn zero_cores_rejected() {
        let cfg = LocalConfig {
            cores: 0,
            ..Default::default()
        };
        assert!(LocalRunner::new(cfg).is_err());
    }

    #[test]
    fn count_triangles_cleans_scratch_dir_on_error() {
        // Regression: the scratch directory used to leak on every
        // error path (cleanup only ran after a successful run).
        let scratch_dirs = || -> std::collections::HashSet<String> {
            std::fs::read_dir(std::env::temp_dir())
                .unwrap()
                .filter_map(|e| e.ok())
                .map(|e| e.file_name().to_string_lossy().into_owned())
                .filter(|n| n.starts_with(&format!("pdtl-count-{}-", std::process::id())))
                .collect()
        };
        let before = scratch_dirs();
        let g = complete(6).unwrap();
        let err = count_triangles_with(
            &g,
            LocalConfig {
                cores: 0, // rejected by LocalRunner::new, after the dir exists
                ..Default::default()
            },
        );
        assert!(err.is_err());
        // Sibling tests in this binary create and remove their own
        // pdtl-count-* dirs concurrently, so poll set-difference: a
        // transient sibling dir disappears when its run finishes, a
        // dir leaked by our failed run persists forever.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let leaked: Vec<String> = scratch_dirs().difference(&before).cloned().collect();
            if leaked.is_empty() {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "failed runs must remove their scratch directory; leaked: {leaked:?}"
            );
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    }

    #[test]
    fn count_triangles_convenience() {
        let g = complete(12).unwrap();
        let report = count_triangles(&g).unwrap();
        assert_eq!(report.triangles, 220);
        assert!(report.wall > std::time::Duration::ZERO);
    }

    #[test]
    fn report_workers_cover_all_positions() {
        let g = rmat(7, 23).unwrap();
        let report = count_triangles_with(
            &g,
            LocalConfig {
                cores: 5,
                budget: MemoryBudget::edges(256),
                balance: BalanceStrategy::InDegree,
                ..Default::default()
            },
        )
        .unwrap();
        let covered: u64 = report.workers.iter().map(|w| w.range.len()).sum();
        assert_eq!(covered, g.num_edges(), "|E*| positions covered exactly");
    }
}
