//! The modified MGT engine (the paper's Algorithm 2), over the
//! rank-space oriented graph.
//!
//! Given the sorted, oriented graph `G*` in rank space, a processor
//! responsible for the contiguous pivot-edge range `[lo, hi)` repeats,
//! until the range is exhausted:
//!
//! 1. **Chunk load** — read the next `c·M` out-neighbours of the range
//!    into the `edg` array, and record in the dense `ind` array (indexed
//!    `v - vlow`) each resident vertex's segment offset and length.
//! 2. **Scan** — stream vertex out-lists `N(u)` from disk into the `nm`
//!    array; compute `N⁺(u)` (those `v ∈ N(u)` with resident out-edges)
//!    via O(1) `ind` probes; for each such `v`, intersect the *suffix*
//!    `nm[idx+1..]` with `v`'s resident segment and report `(u, v, w)`
//!    per common `w`.
//!
//! Rank space buys the hot path two structural wins:
//!
//! * **Suffix intersection** — every `w` completing a triangle satisfies
//!   `w ∈ N(v)` and hence `w > v` numerically, so only the tail of `nm`
//!   after the pivot can match: roughly half the merge work disappears.
//! * **Scan pruning** — a chunk resident on `[vlow, vhigh]` can only be
//!   hit by scanned vertices `u < vhigh` (out-neighbours ascend), so the
//!   scan stops there; and a vertex whose precomputed `(min, max)`
//!   out-neighbour bounds miss the window is skipped with
//!   [`U32Reader::skip`](pdtl_io::U32Reader::skip) instead of read,
//!   cutting `bytes_read` in the multi-pass regime where MGT's I/O bound
//!   actually bites. [`MgtOptions::scan_pruning`] gates both (on by
//!   default; the ablation bench and I/O tests compare).
//!
//! On top of that, [`MgtOptions::backend`] selects how the remaining
//! I/O is performed behind the same seam:
//!
//! * [`IoBackend::Prefetch`] (the default) overlaps I/O with
//!   intersection work: chunk `k+1` loads on a background thread while
//!   chunk `k`'s scan pass computes ([`ChunkPrefetcher`]), and the scan
//!   stream is read ahead by a [`PrefetchReader`], which also keeps the
//!   pruned scan's coalesced short skips sequential on disk.
//! * [`IoBackend::Mmap`] maps the oriented adjacency once
//!   ([`pdtl_io::MmapSource`]) and serves both the scan stream and the
//!   `edg` chunks *zero-copy*: the chunk index is built directly over
//!   the mapped region, so chunk "loads" become pointer arithmetic plus
//!   accounting — the fastest backend when the graph sits in the page
//!   cache. Unsupported platforms degrade to `Blocking` automatically.
//! * [`IoBackend::Uring`] drives the same overlap through the kernel
//!   instead of threads: block reads are queued on an `io_uring`
//!   submission queue with depth > 1 ([`pdtl_io::UringSource`]), so the
//!   next chunk and the scan read-ahead complete asynchronously while
//!   the engine computes — no producer threads, no hand-off copies.
//!   Kernels without `io_uring` degrade to `Prefetch` automatically.
//! * [`IoBackend::Blocking`] is the PR 2 synchronous behaviour, kept as
//!   the accounting reference and ablation baseline.
//!
//! Switching backends is a pure scheduling change: the engine counts
//! the exact same `bytes_read` and `seeks` whichever backend runs,
//! which the integration and property tests assert. Device waits can be
//! recreated deterministically on warm page caches via
//! [`MgtOptions::io_latency`] (honoured by all four backends).
//!
//! Orthogonal to the backend, the graph's on-disk **codec** decides
//! what those transports carry. A [`Codec::DeltaVarint`] adjacency
//! stores each out-list as delta + varint bytes; the engine reads the
//! codec from the graph header and, when compressed, stacks a
//! [`VarintSource`] decoder on top of whichever transport the backend
//! selected — scan skips, chunk loads and seeks all happen in *decoded*
//! positions while only the encoded bytes cross the device, which is
//! exactly where the multi-pass `|E|²/(MB)` term pays. The decoded
//! logical volume is counted separately
//! ([`IoStats::record_decoded`](pdtl_io::IoStats::record_decoded)), so
//! reports show both dimensions.
//!
//! Everything is sorted arrays — the paper found set/map structures >10×
//! slower (§IV-A1). Each triangle is found exactly once because its pivot
//! edge `(v, w)` occupies exactly one adjacency position, which belongs
//! to exactly one processor's range and is resident in exactly one chunk.
//! Triangles are translated back to original ids at the sink boundary
//! through the graph's [`RankMap`](pdtl_graph::RankMap), so the output
//! contract (original ids, cone vertex first) is unchanged.
//!
//! Correctness does **not** depend on the small-degree assumption
//! `d* ≤ cM` — a list split across more than two chunks still has each
//! position resident exactly once; the assumption only tightens the CPU
//! bound (§IV-A2). The engine therefore handles over-budget vertices with
//! no special casing and the property tests exercise `M` far below
//! `d*_max`.

use std::sync::Arc;

use pdtl_io::{
    ChunkPrefetcher, Codec, CpuIoTimer, FaultySource, IoBackend, IoStats, MemoryBudget, MmapSource,
    PrefetchReader, U32Reader, U32Source, UringSource, VarintSource,
};

use crate::balance::EdgeRange;
use crate::error::Result;
use crate::intersect::{intersect_adaptive_visit_counted_with, simd_level};
use crate::metrics::WorkerReport;
use crate::orient::{OrientedCsr, OrientedGraph};
use crate::sink::TriangleSink;

/// Tuning knobs of the MGT engines (ablation surface).
///
/// `MgtOptions::default()` honours the `PDTL_IO_BACKEND` environment
/// override; struct-update syntax pins individual knobs:
///
/// ```
/// use pdtl_core::mgt::{mgt_in_memory_opt, MgtOptions};
/// use pdtl_core::orient::orient_csr;
/// use pdtl_core::sink::CountSink;
/// use pdtl_graph::gen::classic::complete;
/// use pdtl_io::{IoBackend, MemoryBudget};
///
/// let opts = MgtOptions {
///     backend: IoBackend::Uring, // engines resolve() it per platform
///     ..MgtOptions::default()
/// };
/// let oriented = orient_csr(&complete(10).unwrap());
/// let (triangles, _cpu_ops) =
///     mgt_in_memory_opt(&oriented, MemoryBudget::edges(64), &mut CountSink, opts);
/// assert_eq!(triangles, 120); // C(10, 3)
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MgtOptions {
    /// Stop each chunk's scan at `vhigh` and seek past out-lists whose
    /// `(min, max)` bounds cannot overlap the resident window. Disable
    /// only to measure the ablation (PR 1 behaviour).
    pub scan_pruning: bool,
    /// How the disk engine performs its chunk and scan I/O. Every
    /// backend counts the exact same `bytes_read` and `seeks` — the
    /// choice is a scheduling/copy change, not a different I/O plan:
    /// [`IoBackend::Prefetch`] (default) hides device waits behind
    /// compute with threads, [`IoBackend::Uring`] does the same through
    /// kernel submission queues, [`IoBackend::Mmap`] serves
    /// page-cache-resident graphs zero-copy, [`IoBackend::Blocking`] is
    /// the synchronous reference.
    /// The `PDTL_IO_BACKEND` env var overrides the default, which is
    /// how the CI matrix runs the suite under each backend. Ignored by
    /// the in-memory engine, which has no I/O at all.
    pub backend: IoBackend,
    /// Emulated per-block-read device latency
    /// ([`U32Reader::set_read_latency`]), the I/O analogue of the
    /// cluster's `NetModel`: page-cached fixtures never block, so the
    /// blocking-vs-overlapped comparison needs a deterministic way to
    /// recreate the device waits the multi-pass bound is about. Zero
    /// (the default) measures the real hardware.
    pub io_latency: std::time::Duration,
    /// Deterministic fault injection at the scan seam: deliver this
    /// many `u32`s through the scan-pass [`U32Source`], then fail every
    /// further read with an "injected short read" error
    /// ([`pdtl_io::FaultySource`]). Emulates a truncated or dying
    /// replica for the cluster's fault-tolerance tests; `None` (the
    /// default) reads normally.
    pub read_fault: Option<u64>,
    /// How the oriented adjacency is *encoded on disk*
    /// ([`Codec::Raw`] or [`Codec::DeltaVarint`]). This knob selects
    /// the format written by the orientation step (and is what the
    /// cluster ships to workers so every node writes the same format);
    /// the disk engine itself always honours the codec recorded in the
    /// graph's header, so an engine handed a raw graph reads it raw
    /// regardless of this setting. The `PDTL_CODEC` env var overrides
    /// the default, which is how the CI matrix runs the suite under
    /// each codec.
    pub codec: Codec,
}

impl Default for MgtOptions {
    fn default() -> Self {
        Self {
            scan_pruning: true,
            backend: IoBackend::default_from_env(),
            io_latency: std::time::Duration::ZERO,
            read_fault: None,
            codec: Codec::default_from_env(),
        }
    }
}

/// Run MGT over `range` of the oriented graph with the given budget,
/// reporting triangles (original ids) to `sink`. One call = one logical
/// processor.
pub fn mgt_count_range<S: TriangleSink>(
    og: &OrientedGraph,
    range: EdgeRange,
    budget: MemoryBudget,
    sink: &mut S,
    stats: Arc<IoStats>,
) -> Result<WorkerReport> {
    mgt_count_range_opt(og, range, budget, sink, stats, MgtOptions::default())
}

/// [`mgt_count_range`] with explicit [`MgtOptions`].
pub fn mgt_count_range_opt<S: TriangleSink>(
    og: &OrientedGraph,
    range: EdgeRange,
    budget: MemoryBudget,
    sink: &mut S,
    stats: Arc<IoStats>,
    opts: MgtOptions,
) -> Result<WorkerReport> {
    let timer = CpuIoTimer::start(stats.clone());
    let io_before = stats.snapshot();

    let open = || -> Result<U32Reader> {
        let mut r = og.disk.open_adj(&stats)?;
        r.set_read_latency(opts.io_latency);
        Ok(r)
    };
    let open_map = || -> Result<MmapSource> {
        let mut m = MmapSource::open(og.disk.adj_path(), stats.clone())?;
        m.set_read_latency(opts.io_latency);
        Ok(m)
    };
    // Scan readers are wrapped in `FaultySource` so `read_fault` can
    // cut data delivery at a deterministic offset; an unset fault is an
    // unlimited budget (a min + subtract per block read, no behavioral
    // change).
    let fault_budget = opts.read_fault.unwrap_or(u64::MAX);
    // The ring can fail at runtime even after `resolve()` vets the
    // platform (RLIMIT_MEMLOCK on 5.6–5.11 kernels, fd exhaustion,
    // seccomp applied post-probe). Degradation is the backend's
    // contract, so the `Uring` arms fall back to the thread-based
    // overlapper rather than failing the count; genuine file errors
    // resurface identically there.
    let open_uring = || -> Result<UringSource> {
        let mut u = UringSource::open(og.disk.adj_path(), stats.clone())?;
        u.set_read_latency(opts.io_latency);
        Ok(u)
    };
    let (triangles, cpu_ops, iterations) = if og.disk.codec() == Codec::DeltaVarint {
        // Compressed adjacency: each backend still moves the *encoded*
        // bytes through its own transport, and a `VarintSource` above
        // it decodes runs back into rank space. The decoder issues
        // identical word-granular operations whichever transport
        // carries the bytes, so the cross-backend accounting contract
        // (same bytes_read, same seeks) holds for the compressed
        // format with no per-backend cases. The mmap zero-copy paths
        // cannot lend out borrowed *decoded* runs, so mmap decodes
        // through the copying wrappers — the same trade the
        // injected-fault path makes on raw graphs.
        let index = og.disk.varint_index(og.offsets.clone(), &stats)?;
        let run_prefetch = |sink: &mut S| -> Result<(u64, u64, u64)> {
            let scan_reader = CopyScan(FaultySource::new(
                VarintSource::new(PrefetchReader::new(open()?)?, index.clone(), stats.clone())?,
                fault_budget,
            ));
            let chunks = SourceChunks(VarintSource::new(
                PrefetchReader::new(open()?)?,
                index.clone(),
                stats.clone(),
            )?);
            mgt_disk_loop(og, range, budget, sink, opts, chunks, scan_reader)
        };
        match opts.backend.resolve() {
            IoBackend::Prefetch => run_prefetch(sink)?,
            IoBackend::Blocking => {
                let scan_reader = CopyScan(FaultySource::new(
                    VarintSource::new(open()?, index.clone(), stats.clone())?,
                    fault_budget,
                ));
                let chunks =
                    SourceChunks(VarintSource::new(open()?, index.clone(), stats.clone())?);
                mgt_disk_loop(og, range, budget, sink, opts, chunks, scan_reader)?
            }
            IoBackend::Mmap => {
                let scan_reader = CopyScan(FaultySource::new(
                    VarintSource::new(open_map()?, index.clone(), stats.clone())?,
                    fault_budget,
                ));
                let chunks = SourceChunks(VarintSource::new(
                    open_map()?,
                    index.clone(),
                    stats.clone(),
                )?);
                mgt_disk_loop(og, range, budget, sink, opts, chunks, scan_reader)?
            }
            IoBackend::Uring => match open_uring().and_then(|scan| Ok((scan, open_uring()?))) {
                Ok((scan, chunk)) => {
                    let scan_reader = CopyScan(FaultySource::new(
                        VarintSource::new(scan, index.clone(), stats.clone())?,
                        fault_budget,
                    ));
                    let chunks =
                        SourceChunks(VarintSource::new(chunk, index.clone(), stats.clone())?);
                    mgt_disk_loop(og, range, budget, sink, opts, chunks, scan_reader)?
                }
                Err(_) => run_prefetch(sink)?,
            },
        }
    } else {
        let run_prefetch = |sink: &mut S| -> Result<(u64, u64, u64)> {
            let scan_reader = CopyScan(FaultySource::new(
                PrefetchReader::new(open()?)?,
                fault_budget,
            ));
            let chunks = OverlappedChunks::new(open()?)?;
            mgt_disk_loop(og, range, budget, sink, opts, chunks, scan_reader)
        };
        match opts.backend.resolve() {
            IoBackend::Prefetch => run_prefetch(sink)?,
            IoBackend::Blocking => {
                let scan_reader = CopyScan(FaultySource::new(open()?, fault_budget));
                let chunks = BlockingChunks(open()?);
                mgt_disk_loop(og, range, budget, sink, opts, chunks, scan_reader)?
            }
            IoBackend::Mmap if opts.read_fault.is_some() => {
                // The zero-copy `MmapScan` has no short-read seam;
                // under an injected fault, scan through the copying
                // wrapper instead (same bytes accounted, same data —
                // only the borrow is traded for a copy).
                let scan_reader = CopyScan(FaultySource::new(open_map()?, fault_budget));
                let chunks = MmapChunks(open_map()?);
                mgt_disk_loop(og, range, budget, sink, opts, chunks, scan_reader)?
            }
            IoBackend::Mmap => {
                let scan_reader = MmapScan(open_map()?);
                let chunks = MmapChunks(open_map()?);
                mgt_disk_loop(og, range, budget, sink, opts, chunks, scan_reader)?
            }
            IoBackend::Uring => match open_uring().and_then(|scan| Ok((scan, open_uring()?))) {
                Ok((scan, chunk)) => {
                    let scan_reader = CopyScan(FaultySource::new(scan, fault_budget));
                    let chunks = UringChunks(chunk);
                    mgt_disk_loop(og, range, budget, sink, opts, chunks, scan_reader)?
                }
                Err(_) => run_prefetch(sink)?,
            },
        }
    };
    sink.flush()?;

    let io_after = stats.snapshot();
    Ok(WorkerReport {
        worker: 0,
        range,
        triangles,
        iterations,
        cpu_ops,
        io: pdtl_io::stats::IoSnapshot {
            bytes_read: io_after.bytes_read - io_before.bytes_read,
            bytes_written: io_after.bytes_written - io_before.bytes_written,
            read_ops: io_after.read_ops - io_before.read_ops,
            write_ops: io_after.write_ops - io_before.write_ops,
            seeks: io_after.seeks - io_before.seeks,
            io_time: io_after.io_time.saturating_sub(io_before.io_time),
            u32s_decoded: io_after.u32s_decoded - io_before.u32s_decoded,
        },
        breakdown: timer.finish(),
    })
}

/// Source of `edg` chunks for the disk engine, returning each chunk as
/// a slice so backends choose their own storage: the blocking variant
/// loads into `scratch` on demand, the overlapped one serves a chunk
/// loaded in the background (and immediately starts on the next), and
/// the mmap variant returns a window of the mapped adjacency directly —
/// no copy at all.
trait ChunkSource {
    /// The values of `[pos, pos + len)`, backed either by `scratch` or
    /// by the source itself. `next` is the following chunk's
    /// `(pos, len)`, which an overlapped source starts loading (and the
    /// mmap source hints with `MADV_WILLNEED`) before returning.
    fn load<'a>(
        &'a mut self,
        pos: u64,
        len: usize,
        next: Option<(u64, usize)>,
        scratch: &'a mut Vec<u32>,
    ) -> Result<&'a [u32]>;
}

/// Chunk loads in *decoded* space through any [`U32Source`] — the
/// codec-layer chunk path. A [`VarintSource`] translates the decoded
/// range `[pos, pos + len)` into one byte-offset seek on its transport
/// plus sequential decode, so a compressed chunk load costs the encoded
/// bytes, not the decoded volume. Read-ahead hints are skipped: a
/// decoded `next` position has no fixed byte address until the decoder
/// reaches it.
struct SourceChunks<S: U32Source>(S);

impl<S: U32Source> ChunkSource for SourceChunks<S> {
    fn load<'a>(
        &'a mut self,
        pos: u64,
        len: usize,
        _next: Option<(u64, usize)>,
        scratch: &'a mut Vec<u32>,
    ) -> Result<&'a [u32]> {
        self.0.read_exact_range(pos, len, scratch)?;
        Ok(&scratch[..])
    }
}

struct BlockingChunks(U32Reader);

impl ChunkSource for BlockingChunks {
    fn load<'a>(
        &'a mut self,
        pos: u64,
        len: usize,
        _next: Option<(u64, usize)>,
        scratch: &'a mut Vec<u32>,
    ) -> Result<&'a [u32]> {
        // read_exact_range is the same primitive the overlapped
        // source's background thread uses, so the two modes cannot
        // drift on out-of-range handling.
        self.0.read_exact_range(pos, len, scratch)?;
        Ok(&scratch[..])
    }
}

/// Zero-copy chunk loads over the mapped oriented adjacency: the chunk
/// "load" is pointer arithmetic plus the buffered reader's exact
/// seek/refill accounting ([`MmapSource::range_run`]).
struct MmapChunks(MmapSource);

impl ChunkSource for MmapChunks {
    fn load<'a>(
        &'a mut self,
        pos: u64,
        len: usize,
        next: Option<(u64, usize)>,
        _scratch: &'a mut Vec<u32>,
    ) -> Result<&'a [u32]> {
        if let Some((npos, nlen)) = next {
            // Hint the next resident window while this one is scanned.
            self.0.will_need(npos, nlen);
        }
        Ok(self.0.range_run(pos, len)?)
    }
}

struct OverlappedChunks {
    prefetcher: ChunkPrefetcher,
    /// The request already in flight, if any.
    in_flight: Option<(u64, usize)>,
}

impl OverlappedChunks {
    fn new(reader: U32Reader) -> pdtl_io::Result<Self> {
        Ok(Self {
            prefetcher: ChunkPrefetcher::new(reader)?,
            in_flight: None,
        })
    }
}

impl ChunkSource for OverlappedChunks {
    fn load<'a>(
        &'a mut self,
        pos: u64,
        len: usize,
        next: Option<(u64, usize)>,
        scratch: &'a mut Vec<u32>,
    ) -> Result<&'a [u32]> {
        if self.in_flight != Some((pos, len)) {
            if self.in_flight.is_some() {
                // A stale request is outstanding (a caller deviated
                // from the announced `next`): drain it so its result
                // cannot be handed out as this chunk's data.
                let _ = self.prefetcher.take();
            }
            // First chunk of the range (nothing requested ahead yet).
            self.prefetcher.request(pos, len, Vec::new());
        }
        let loaded = self.prefetcher.take()?;
        let spare = std::mem::replace(scratch, loaded);
        self.in_flight = next;
        if let Some((npos, nlen)) = next {
            // Chunk k+1 loads while chunk k's scan pass computes.
            self.prefetcher.request(npos, nlen, spare);
        }
        Ok(&scratch[..])
    }
}

/// Chunk loads through `io_uring`: the blocking load primitive plus a
/// [`UringSource::pre_read`] hint, so chunk `k+1`'s blocks complete in
/// the kernel while chunk `k`'s scan pass computes — the overlapped
/// chunk loader without the prefetch thread.
struct UringChunks(UringSource);

impl ChunkSource for UringChunks {
    fn load<'a>(
        &'a mut self,
        pos: u64,
        len: usize,
        next: Option<(u64, usize)>,
        scratch: &'a mut Vec<u32>,
    ) -> Result<&'a [u32]> {
        // Same primitive (and failure behaviour) as the blocking chunk
        // loader; the read-ahead happens underneath the accounting.
        self.0.read_exact_range(pos, len, scratch)?;
        if let Some((npos, nlen)) = next {
            // Queue the next chunk's blocks while this one is scanned.
            self.0.pre_read(npos, nlen);
        }
        Ok(&scratch[..])
    }
}

/// Source of out-lists for the scan pass, returning each list as a
/// slice: buffered backends decode into `scratch`, the mmap backend
/// serves the list straight out of the mapping.
trait ScanSource {
    /// Reposition to the `index`-th `u32` (clamped; counted as a seek).
    fn seek_to(&mut self, index: u64) -> pdtl_io::Result<()>;
    /// Skip `n` values (clamped; short skips coalesce to read-through).
    fn skip(&mut self, n: u64) -> pdtl_io::Result<()>;
    /// The next `n` values (fewer at end of file), backed either by
    /// `scratch` or by the source itself.
    fn next_run<'a>(
        &'a mut self,
        n: usize,
        scratch: &'a mut Vec<u32>,
    ) -> pdtl_io::Result<&'a [u32]>;
}

/// Any [`U32Source`] as a [`ScanSource`], decoding into the scratch
/// buffer (the blocking and prefetching scan paths).
struct CopyScan<S: U32Source>(S);

impl<S: U32Source> ScanSource for CopyScan<S> {
    fn seek_to(&mut self, index: u64) -> pdtl_io::Result<()> {
        self.0.seek_to(index)
    }

    fn skip(&mut self, n: u64) -> pdtl_io::Result<()> {
        self.0.skip(n)
    }

    fn next_run<'a>(
        &'a mut self,
        n: usize,
        scratch: &'a mut Vec<u32>,
    ) -> pdtl_io::Result<&'a [u32]> {
        scratch.clear();
        self.0.read_into(scratch, n)?;
        Ok(&scratch[..])
    }
}

/// The zero-copy scan path: out-lists are windows of the mapping.
struct MmapScan(MmapSource);

impl ScanSource for MmapScan {
    fn seek_to(&mut self, index: u64) -> pdtl_io::Result<()> {
        U32Source::seek_to(&mut self.0, index)
    }

    fn skip(&mut self, n: u64) -> pdtl_io::Result<()> {
        U32Source::skip(&mut self.0, n)
    }

    fn next_run<'a>(
        &'a mut self,
        n: usize,
        _scratch: &'a mut Vec<u32>,
    ) -> pdtl_io::Result<&'a [u32]> {
        self.0.read_run(n)
    }
}

/// The disk engine's chunk/scan loop, generic over the I/O backend
/// (blocking, overlapped or memory-mapped chunk/scan sources) so the
/// modes cannot drift. Returns `(triangles, cpu_ops, iterations)`.
fn mgt_disk_loop<S: TriangleSink, C: ChunkSource, R: ScanSource>(
    og: &OrientedGraph,
    range: EdgeRange,
    budget: MemoryBudget,
    sink: &mut S,
    opts: MgtOptions,
    mut chunks: C,
    mut scan_reader: R,
) -> Result<(u64, u64, u64)> {
    let offsets = &og.offsets;
    let ids = og.map.ids();
    let n = og.num_vertices();
    let chunk_cap = budget.chunk_edges();
    // Backing storage for backends that decode (the mmap backend serves
    // slices of the mapping instead and leaves these untouched).
    let mut edg_buf: Vec<u32> = Vec::with_capacity(chunk_cap.min(range.len() as usize));
    let mut ind: Vec<(u32, u32)> = Vec::new();
    let mut nm_buf: Vec<u32> = Vec::with_capacity(og.d_star_max as usize);
    let mut triangles = 0u64;
    let mut cpu_ops = 0u64;
    let mut iterations = 0u64;
    // Resolved once per loop, not once per intersection: the inner loop
    // issues one adaptive intersection per scanned neighbour.
    let simd = simd_level();

    let mut pos = range.start;
    while pos < range.end {
        let len = (range.end - pos).min(chunk_cap as u64) as usize;
        iterations += 1;

        // -- chunk load: edg + ind ------------------------------------
        let chunk_end = pos + len as u64;
        let next = (chunk_end < range.end).then(|| {
            (
                chunk_end,
                (range.end - chunk_end).min(chunk_cap as u64) as usize,
            )
        });
        let edg = chunks.load(pos, len, next, &mut edg_buf)?;
        let (vlow, vhigh) = build_chunk_index(offsets, pos, chunk_end, &mut ind);
        cpu_ops += len as u64 + ind.len() as u64;

        // -- scan pass ------------------------------------------------
        // Only u < vhigh can hold a window vertex: out-neighbours ascend
        // in rank space, so every v ∈ N(u) satisfies v > u.
        let scan_cap = if opts.scan_pruning { vhigh } else { n };
        scan_reader.seek_to(0)?;
        for u in 0..scan_cap {
            let du = (offsets[u as usize + 1] - offsets[u as usize]) as usize;
            if du == 0 {
                continue;
            }
            if opts.scan_pruning {
                let (bmin, bmax) = og.bounds[u as usize];
                if bmax < vlow || bmin > vhigh {
                    scan_reader.skip(du as u64)?;
                    cpu_ops += 1;
                    continue;
                }
            }
            let nm = scan_reader.next_run(du, &mut nm_buf)?;
            cpu_ops += du as u64;

            // N+(u): entries of nm with resident out-edges. nm is sorted,
            // so restrict to [vlow, vhigh] first.
            let lo_i = nm.partition_point(|&x| x < vlow);
            let hi_i = nm.partition_point(|&x| x <= vhigh);
            let iu = ids[u as usize];
            for idx in lo_i..hi_i {
                let v = nm[idx];
                let (seg_off, seg_len) = ind[(v - vlow) as usize];
                if seg_len == 0 {
                    continue;
                }
                let ev = &edg[seg_off as usize..(seg_off + seg_len) as usize];
                let iv = ids[v as usize];
                let (t, cmps) =
                    intersect_adaptive_visit_counted_with(simd, &nm[idx + 1..], ev, |w| {
                        sink.emit(iu, iv, ids[w as usize])
                    });
                triangles += t;
                cpu_ops += cmps;
            }
        }

        pos = chunk_end;
    }
    Ok((triangles, cpu_ops, iterations))
}

/// Build the dense chunk index for the resident window `[pos,
/// chunk_end)`: `ind[v - vlow] = (offset within the chunk, length)` for
/// every vertex with resident out-edges. Shared by the disk and
/// in-memory engines so they cannot drift. Returns `(vlow, vhigh)`.
fn build_chunk_index(
    offsets: &[u64],
    pos: u64,
    chunk_end: u64,
    ind: &mut Vec<(u32, u32)>,
) -> (u32, u32) {
    let vlow = vertex_of(offsets, pos);
    let vhigh = vertex_of(offsets, chunk_end - 1);
    ind.clear();
    ind.resize((vhigh - vlow + 1) as usize, (0, 0));
    for v in vlow..=vhigh {
        let seg_start = offsets[v as usize].max(pos);
        let seg_end = offsets[v as usize + 1].min(chunk_end);
        if seg_end > seg_start {
            ind[(v - vlow) as usize] = ((seg_start - pos) as u32, (seg_end - seg_start) as u32);
        }
    }
    (vlow, vhigh)
}

/// Index of the vertex owning adjacency position `pos` (vertices with
/// `d* = 0` own no positions and are skipped automatically).
#[inline]
fn vertex_of(offsets: &[u64], pos: u64) -> u32 {
    debug_assert!(pos < *offsets.last().unwrap());
    (offsets.partition_point(|&o| o <= pos) - 1) as u32
}

/// Pure in-memory MGT over an [`OrientedCsr`] — identical chunk logic
/// without the disk, used by tests, baselines and the convenience
/// counter. Emits original ids. Returns (triangles, cpu_ops).
pub fn mgt_in_memory<S: TriangleSink>(
    o: &OrientedCsr,
    budget: MemoryBudget,
    sink: &mut S,
) -> (u64, u64) {
    mgt_in_memory_opt(o, budget, sink, MgtOptions::default())
}

/// [`mgt_in_memory`] with explicit [`MgtOptions`].
pub fn mgt_in_memory_opt<S: TriangleSink>(
    o: &OrientedCsr,
    budget: MemoryBudget,
    sink: &mut S,
    opts: MgtOptions,
) -> (u64, u64) {
    let n = o.num_vertices();
    let ids = o.map.ids();
    let m_star = o.m_star();
    let chunk_cap = budget.chunk_edges() as u64;
    let mut triangles = 0u64;
    let mut cpu_ops = 0u64;
    let mut ind: Vec<(u32, u32)> = Vec::new();
    let simd = simd_level();

    let mut pos = 0u64;
    while pos < m_star {
        let chunk_end = (pos + chunk_cap).min(m_star);
        let (vlow, vhigh) = build_chunk_index(&o.offsets, pos, chunk_end, &mut ind);
        let edg = &o.adj[pos as usize..chunk_end as usize];
        cpu_ops += edg.len() as u64 + ind.len() as u64;

        let scan_cap = if opts.scan_pruning { vhigh } else { n };
        for u in 0..scan_cap {
            let nm = o.out(u);
            if nm.is_empty() {
                continue;
            }
            if opts.scan_pruning && (*nm.last().unwrap() < vlow || nm[0] > vhigh) {
                cpu_ops += 1;
                continue;
            }
            cpu_ops += nm.len() as u64;
            // Single-chunk fast path: when the chunk spans every vertex
            // the window is the whole list and the two binary searches
            // would just return its bounds.
            let (lo_i, hi_i) = if vlow == 0 && vhigh == n - 1 {
                (0, nm.len())
            } else {
                (
                    nm.partition_point(|&x| x < vlow),
                    nm.partition_point(|&x| x <= vhigh),
                )
            };
            let iu = ids[u as usize];
            for idx in lo_i..hi_i {
                let v = nm[idx];
                let (seg_off, seg_len) = ind[(v - vlow) as usize];
                if seg_len == 0 {
                    continue;
                }
                let ev = &edg[seg_off as usize..(seg_off + seg_len) as usize];
                let iv = ids[v as usize];
                let (t, cmps) =
                    intersect_adaptive_visit_counted_with(simd, &nm[idx + 1..], ev, |w| {
                        sink.emit(iu, iv, ids[w as usize])
                    });
                triangles += t;
                cpu_ops += cmps;
            }
        }
        pos = chunk_end;
    }
    let _ = sink.flush();
    (triangles, cpu_ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orient::{orient_csr, orient_to_disk};
    use crate::sink::{CollectSink, CountSink};
    use pdtl_graph::gen::classic::{complete, cycle, grid, wheel};
    use pdtl_graph::gen::rmat::rmat;
    use pdtl_graph::verify::triangle_count;
    use pdtl_graph::{DiskGraph, Graph};
    use std::path::PathBuf;

    fn tmpbase(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdtl-mgt-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn disk_oriented(g: &Graph, tag: &str) -> (OrientedGraph, Arc<IoStats>) {
        let stats = IoStats::new();
        let dg = DiskGraph::write(g, tmpbase(&format!("{tag}-in")), &stats).unwrap();
        let (og, _) = orient_to_disk(&dg, tmpbase(&format!("{tag}-or")), 2, &stats).unwrap();
        (og, stats)
    }

    fn full_range(og: &OrientedGraph) -> EdgeRange {
        EdgeRange {
            start: 0,
            end: og.m_star(),
        }
    }

    #[test]
    fn counts_fixture_graphs_exactly() {
        for (g, tag) in [
            (complete(10).unwrap(), "k10"),
            (cycle(12).unwrap(), "c12"),
            (wheel(9).unwrap(), "w9"),
            (grid(5, 6).unwrap(), "g56"),
        ] {
            let expected = triangle_count(&g);
            let (og, stats) = disk_oriented(&g, tag);
            let r = mgt_count_range(
                &og,
                full_range(&og),
                MemoryBudget::edges(1 << 16),
                &mut CountSink,
                stats,
            )
            .unwrap();
            assert_eq!(r.triangles, expected, "{tag}");
        }
    }

    #[test]
    fn counts_match_oracle_on_rmat_across_budgets() {
        let g = rmat(8, 11).unwrap();
        let expected = triangle_count(&g);
        let (og, stats) = disk_oriented(&g, "budgets");
        // budgets from "everything fits" down to pathologically tiny,
        // including below d*_max (small-degree assumption violated).
        for edges in [1 << 20, 4096, 256, 32, 8, 2] {
            let r = mgt_count_range(
                &og,
                full_range(&og),
                MemoryBudget::edges(edges),
                &mut CountSink,
                stats.clone(),
            )
            .unwrap();
            assert_eq!(r.triangles, expected, "budget {edges}");
            assert_eq!(
                r.iterations,
                MemoryBudget::edges(edges).iterations_for(og.m_star())
            );
        }
    }

    #[test]
    fn pruned_and_unpruned_agree() {
        let g = rmat(8, 11).unwrap();
        let expected = triangle_count(&g);
        let (og, stats) = disk_oriented(&g, "prune-agree");
        for edges in [1 << 20, 512, 16] {
            for prune in [true, false] {
                let r = mgt_count_range_opt(
                    &og,
                    full_range(&og),
                    MemoryBudget::edges(edges),
                    &mut CountSink,
                    stats.clone(),
                    MgtOptions {
                        scan_pruning: prune,
                        ..MgtOptions::default()
                    },
                )
                .unwrap();
                assert_eq!(r.triangles, expected, "budget {edges} prune {prune}");
            }
        }
    }

    #[test]
    fn scan_pruning_cuts_bytes_read_in_multipass_runs() {
        // The adjacency file must span several read buffers (64 KiB)
        // for block-granular pruning to bite: RMAT-12 is ~4 buffers
        // raw. The fixture is pinned to the raw codec — delta-varint
        // shrinks it to ~1.3 buffers, at which point skip coalescing
        // reads the whole file through regardless of pruning and the
        // ablation being measured here disappears (the codec's own
        // bytes_read win is asserted at the pipeline level instead).
        use crate::orient::orient_to_disk_with;
        let g = rmat(12, 18).unwrap();
        let stats = IoStats::new();
        let dg = DiskGraph::write(&g, tmpbase("prune-io-in"), &stats).unwrap();
        let (og, _) =
            orient_to_disk_with(&dg, tmpbase("prune-io-or"), 2, Codec::Raw, &stats).unwrap();
        let run = |prune: bool| {
            let s = IoStats::new();
            let r = mgt_count_range_opt(
                &og,
                full_range(&og),
                MemoryBudget::edges(4096),
                &mut CountSink,
                s,
                MgtOptions {
                    scan_pruning: prune,
                    ..MgtOptions::default()
                },
            )
            .unwrap();
            (r.triangles, r.io.bytes_read, r.io.seeks, r.iterations)
        };
        let (t_pruned, io_pruned, seeks_pruned, iters) = run(true);
        let (t_full, io_full, _, _) = run(false);
        println!(
            "scan pruning bytes_read: {io_pruned} vs {io_full} ({:.1}% cut), \
             {seeks_pruned} seeks over {iters} iterations",
            100.0 * (1.0 - io_pruned as f64 / io_full as f64)
        );
        assert_eq!(t_pruned, t_full);
        assert!(
            io_pruned * 5 <= io_full * 4,
            "pruning must cut at least 20% of bytes_read: {io_pruned} vs {io_full}"
        );
        // Regression for the seek storm: before skip coalescing, every
        // buffer-missing skip paid an OS seek (thousands across this
        // fixture). With read-through, only the per-iteration chunk
        // seek + scan rewind remain, plus the occasional genuinely
        // long skip.
        assert!(
            seeks_pruned <= 3 * iters,
            "pruned scan must not seek-storm: {seeks_pruned} seeks over {iters} iterations"
        );
    }

    #[test]
    fn overlap_reduces_wall_time_in_multipass_runs() {
        // RMAT-12 at budget 4096 is the multi-pass regime the Theorem
        // IV.2 `|E|²/(MB)` term dominates: the blocking engine stalls
        // on every chunk load and scan refill. The fixture lives in the
        // page cache (and CI machines may have a single core), so the
        // device waits that regime is about are recreated with the
        // deterministic `io_latency` emulation — 50 µs per block read,
        // a fast-SSD figure. A sleeping producer yields its core, so
        // genuine overlap shows up even on one CPU; what cannot be
        // hidden (first block after each scan rewind) still bounds the
        // win, keeping the comparison honest. Min-of-3 runs per mode.
        let g = rmat(12, 18).unwrap();
        let (og, _) = disk_oriented(&g, "overlap-wall");
        let run = |backend: IoBackend| {
            let s = IoStats::new();
            let r = mgt_count_range_opt(
                &og,
                full_range(&og),
                MemoryBudget::edges(4096),
                &mut CountSink,
                s,
                MgtOptions {
                    backend,
                    io_latency: std::time::Duration::from_micros(50),
                    ..MgtOptions::default()
                },
            )
            .unwrap();
            (r.triangles, r.io.bytes_read, r.io.seeks, r.breakdown.wall)
        };
        let best = |backend| (0..3).map(|_| run(backend)).min_by_key(|r| r.3).unwrap();
        let (t_ov, bytes_ov, seeks_ov, wall_ov) = best(IoBackend::Prefetch);
        let (t_bl, bytes_bl, seeks_bl, wall_bl) = best(IoBackend::Blocking);
        println!(
            "prefetch backend wall at 50µs/block device latency: {wall_ov:?} vs blocking \
             {wall_bl:?} ({:.1}% cut; {bytes_ov} bytes, {seeks_ov} seeks each)",
            100.0 * (1.0 - wall_ov.as_secs_f64() / wall_bl.as_secs_f64())
        );
        assert_eq!(t_ov, t_bl, "identical triangle counts");
        assert_eq!(bytes_ov, bytes_bl, "identical bytes_read");
        assert_eq!(seeks_ov, seeks_bl, "identical seeks");
        // The wall-clock claim is asserted for optimized builds only:
        // debug builds time unoptimized mutex/condvar/decode paths (on
        // possibly single-core CI boxes), which is not the comparison
        // the overlap is about. Release runs cut ~20% here; on a
        // machine saturated by other work, PDTL_SKIP_PERF_ASSERTS=1
        // opts out of the strict inequality (counts/bytes/seeks above
        // are always asserted).
        if cfg!(debug_assertions) || std::env::var_os("PDTL_SKIP_PERF_ASSERTS").is_some() {
            return;
        }
        assert!(
            wall_ov < wall_bl,
            "overlapped I/O must reduce wall time in the multi-pass regime: \
             {wall_ov:?} vs {wall_bl:?}"
        );
    }

    #[test]
    fn all_backends_agree_across_budgets() {
        // Every I/O backend must produce the oracle count and identical
        // I/O accounting at every budget, including chunk = 1 edge. The
        // blocking engine is the accounting reference.
        let g = rmat(8, 11).unwrap();
        let expected = triangle_count(&g);
        let (og, _) = disk_oriented(&g, "backend-agree");
        for edges in [1 << 20, 4096, 256, 32, 8, 2] {
            let run = |backend: IoBackend| {
                let s = IoStats::new();
                let r = mgt_count_range_opt(
                    &og,
                    full_range(&og),
                    MemoryBudget::edges(edges),
                    &mut CountSink,
                    s,
                    MgtOptions {
                        backend,
                        ..MgtOptions::default()
                    },
                )
                .unwrap();
                (r.triangles, r.io.bytes_read, r.io.seeks)
            };
            let (t_bl, bytes_bl, seeks_bl) = run(IoBackend::Blocking);
            assert_eq!(t_bl, expected, "budget {edges}");
            for backend in [IoBackend::Prefetch, IoBackend::Mmap, IoBackend::Uring] {
                let (t, bytes, seeks) = run(backend);
                assert_eq!(t, expected, "budget {edges} {backend}");
                assert_eq!(bytes, bytes_bl, "budget {edges} {backend}: bytes_read");
                assert_eq!(seeks, seeks_bl, "budget {edges} {backend}: seeks");
            }
        }
    }

    #[test]
    fn compressed_graphs_count_identically_across_backends() {
        // The codec × transport cross-product: a delta-varint graph
        // must produce the oracle count under every backend, with the
        // decoded-volume dimension populated and identical accounting
        // across backends (the decoder issues the same word ops
        // whichever transport carries the bytes).
        use crate::orient::orient_to_disk_with;
        let g = rmat(8, 11).unwrap();
        let expected = triangle_count(&g);
        let stats = IoStats::new();
        let dg = DiskGraph::write(&g, tmpbase("codec-agree-in"), &stats).unwrap();
        let (og, _) = orient_to_disk_with(
            &dg,
            tmpbase("codec-agree-or"),
            2,
            Codec::DeltaVarint,
            &stats,
        )
        .unwrap();
        assert_eq!(og.disk.codec(), Codec::DeltaVarint);
        for edges in [1 << 20, 256, 8] {
            let run = |backend: IoBackend| {
                let s = IoStats::new();
                let r = mgt_count_range_opt(
                    &og,
                    full_range(&og),
                    MemoryBudget::edges(edges),
                    &mut CountSink,
                    s,
                    MgtOptions {
                        backend,
                        ..MgtOptions::default()
                    },
                )
                .unwrap();
                (r.triangles, r.io.bytes_read, r.io.seeks, r.io.u32s_decoded)
            };
            let (t_bl, bytes_bl, seeks_bl, dec_bl) = run(IoBackend::Blocking);
            assert_eq!(t_bl, expected, "budget {edges}");
            assert!(dec_bl > 0, "decoded dimension must be populated");
            for backend in [IoBackend::Prefetch, IoBackend::Mmap, IoBackend::Uring] {
                let (t, bytes, seeks, dec) = run(backend);
                assert_eq!(t, expected, "budget {edges} {backend}");
                assert_eq!(bytes, bytes_bl, "budget {edges} {backend}: bytes_read");
                assert_eq!(seeks, seeks_bl, "budget {edges} {backend}: seeks");
                assert_eq!(dec, dec_bl, "budget {edges} {backend}: u32s_decoded");
            }
        }
    }

    #[test]
    fn ranges_partition_the_count() {
        let g = rmat(8, 12).unwrap();
        let expected = triangle_count(&g);
        let (og, stats) = disk_oriented(&g, "ranges");
        let m = og.m_star();
        for parts in [2u64, 3, 7] {
            let mut total = 0u64;
            for i in 0..parts {
                let range = EdgeRange {
                    start: m * i / parts,
                    end: m * (i + 1) / parts,
                };
                let r = mgt_count_range(
                    &og,
                    range,
                    MemoryBudget::edges(512),
                    &mut CountSink,
                    stats.clone(),
                )
                .unwrap();
                total += r.triangles;
            }
            assert_eq!(total, expected, "parts {parts}");
        }
    }

    #[test]
    fn listing_matches_oracle_set() {
        let g = rmat(7, 13).unwrap();
        let (og, stats) = disk_oriented(&g, "listing");
        let mut sink = CollectSink::default();
        let r = mgt_count_range(
            &og,
            full_range(&og),
            MemoryBudget::edges(128),
            &mut sink,
            stats,
        )
        .unwrap();
        assert_eq!(r.triangles as usize, sink.triangles.len());

        // canonicalise (u,v,w) -> sorted ids and compare with oracle
        let mut got: Vec<(u32, u32, u32)> = sink
            .triangles
            .iter()
            .map(|&(a, b, c)| {
                let mut t = [a, b, c];
                t.sort_unstable();
                (t[0], t[1], t[2])
            })
            .collect();
        got.sort_unstable();
        let mut expected = pdtl_graph::verify::triangle_list(&g);
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn each_triangle_emitted_once_with_cone_first() {
        // The sink boundary translates ranks back: emitted triples are
        // original ids, cone vertex first under the degree order.
        let g = rmat(6, 14).unwrap();
        let (og, stats) = disk_oriented(&g, "cone");
        let mut sink = CollectSink::default();
        mgt_count_range(
            &og,
            full_range(&og),
            MemoryBudget::edges(64),
            &mut sink,
            stats,
        )
        .unwrap();
        let degrees = g.degrees();
        let ord = crate::order::DegreeOrder::new(&degrees);
        let mut seen = std::collections::HashSet::new();
        for &(u, v, w) in &sink.triangles {
            assert!(ord.precedes(u, v) && ord.precedes(v, w), "u ≺ v ≺ w");
            assert!(g.has_edge(u, v) && g.has_edge(v, w) && g.has_edge(u, w));
            let mut t = [u, v, w];
            t.sort_unstable();
            assert!(seen.insert(t), "duplicate triangle {t:?}");
        }
    }

    #[test]
    fn empty_range_and_empty_graph() {
        let g = rmat(6, 15).unwrap();
        let (og, stats) = disk_oriented(&g, "empty-range");
        let r = mgt_count_range(
            &og,
            EdgeRange { start: 5, end: 5 },
            MemoryBudget::edges(64),
            &mut CountSink,
            stats,
        )
        .unwrap();
        assert_eq!(r.triangles, 0);
        assert_eq!(r.iterations, 0);

        let g = Graph::empty(4);
        let (og, stats) = disk_oriented(&g, "empty-graph");
        let r = mgt_count_range(
            &og,
            full_range(&og),
            MemoryBudget::edges(64),
            &mut CountSink,
            stats,
        )
        .unwrap();
        assert_eq!(r.triangles, 0);
    }

    #[test]
    fn io_grows_with_iterations() {
        // Theorem IV.2: h = ceil(m*/cM) passes over the graph.
        let g = rmat(8, 16).unwrap();
        let (og, stats) = disk_oriented(&g, "iogrow");
        let run = |edges: usize| {
            let s = IoStats::new();
            let r = mgt_count_range(
                &og,
                EdgeRange {
                    start: 0,
                    end: og.m_star(),
                },
                MemoryBudget::edges(edges),
                &mut CountSink,
                s,
            )
            .unwrap();
            (r.iterations, r.io.bytes_read)
        };
        let _ = &stats;
        let (it_big, io_big) = run(1 << 20);
        let (it_small, io_small) = run(256);
        assert_eq!(it_big, 1);
        assert!(it_small > it_big);
        assert!(
            io_small > 2 * io_big,
            "more iterations must re-scan the graph: {io_small} vs {io_big}"
        );
    }

    #[test]
    fn in_memory_matches_disk_engine() {
        let g = rmat(8, 17).unwrap();
        let o = orient_csr(&g);
        for edges in [1 << 20, 512, 16] {
            let (t, ops) = mgt_in_memory(&o, MemoryBudget::edges(edges), &mut CountSink);
            assert_eq!(t, triangle_count(&g), "budget {edges}");
            assert!(ops > 0);
        }
    }

    #[test]
    fn in_memory_pruning_agrees_and_saves_work() {
        let g = rmat(8, 20).unwrap();
        let o = orient_csr(&g);
        let budget = MemoryBudget::edges(512);
        let (t_p, ops_p) = mgt_in_memory_opt(&o, budget, &mut CountSink, MgtOptions::default());
        let (t_f, ops_f) = mgt_in_memory_opt(
            &o,
            budget,
            &mut CountSink,
            MgtOptions {
                scan_pruning: false,
                ..MgtOptions::default()
            },
        );
        assert_eq!(t_p, t_f);
        assert!(
            ops_p < ops_f,
            "pruning must reduce counted work: {ops_p} vs {ops_f}"
        );
    }

    #[test]
    fn cpu_ops_respect_arboricity_flavor() {
        // On the (planar) grid the intersection work must stay linear-ish
        // in |E|: cpu_ops = O(|E|) with a small constant when M is large.
        // The counted-comparison accounting tightens the old 20|E| bound.
        let g = grid(40, 40).unwrap();
        let o = orient_csr(&g);
        let (_, ops) = mgt_in_memory(&o, MemoryBudget::edges(1 << 22), &mut CountSink);
        let m = g.num_edges();
        assert!(
            ops < 8 * m,
            "planar graph: ops {ops} should be O(|E|) = O({m})"
        );
    }

    #[test]
    fn vertex_of_skips_zero_degree_vertices() {
        // offsets: v0 has 2, v1 has 0, v2 has 3
        let offsets = [0u64, 2, 2, 5];
        assert_eq!(vertex_of(&offsets, 0), 0);
        assert_eq!(vertex_of(&offsets, 1), 0);
        assert_eq!(vertex_of(&offsets, 2), 2);
        assert_eq!(vertex_of(&offsets, 4), 2);
    }

    #[test]
    fn chunk_index_marks_partial_segments() {
        // offsets: v0: [0,3), v1: [3,4), v2: [4,8)
        let offsets = [0u64, 3, 4, 8];
        let mut ind = Vec::new();
        let (vlow, vhigh) = build_chunk_index(&offsets, 2, 6, &mut ind);
        assert_eq!((vlow, vhigh), (0, 2));
        // v0 contributes [2,3), v1 all of [3,4), v2 [4,6)
        assert_eq!(ind, vec![(0, 1), (1, 1), (2, 2)]);
    }
}
