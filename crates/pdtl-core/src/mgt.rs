//! The modified MGT engine (the paper's Algorithm 2).
//!
//! Given the sorted, oriented graph `G*`, a processor responsible for the
//! contiguous pivot-edge range `[lo, hi)` repeats, until the range is
//! exhausted:
//!
//! 1. **Chunk load** — read the next `c·M` out-neighbours of the range
//!    into the `edg` array, and record in the dense `ind` array (indexed
//!    `v - vlow`) each resident vertex's segment offset and length.
//! 2. **Scan** — stream every vertex `u`'s out-list `N(u)` from disk into
//!    the `nm` array; compute `N⁺(u)` (those `v ∈ N(u)` with resident
//!    out-edges) via O(1) `ind` probes; for each such `v`, intersect `nm`
//!    with `v`'s resident segment and report `(u, v, w)` per common `w`.
//!
//! Everything is sorted arrays — the paper found set/map structures >10×
//! slower (§IV-A1). Each triangle is found exactly once because its pivot
//! edge `(v, w)` occupies exactly one adjacency position, which belongs
//! to exactly one processor's range and is resident in exactly one chunk.
//!
//! Correctness does **not** depend on the small-degree assumption
//! `d* ≤ cM` — a list split across more than two chunks still has each
//! position resident exactly once; the assumption only tightens the CPU
//! bound (§IV-A2). The engine therefore handles over-budget vertices with
//! no special casing and the property tests exercise `M` far below
//! `d*_max`.

use std::sync::Arc;

use pdtl_io::{CpuIoTimer, IoStats, MemoryBudget};

use crate::balance::EdgeRange;
use crate::error::Result;
use crate::intersect::intersect_adaptive_visit;
use crate::metrics::WorkerReport;
use crate::orient::{OrientedCsr, OrientedGraph};
use crate::sink::TriangleSink;

/// Run MGT over `range` of the oriented graph with the given budget,
/// reporting triangles to `sink`. One call = one logical processor.
pub fn mgt_count_range<S: TriangleSink>(
    og: &OrientedGraph,
    range: EdgeRange,
    budget: MemoryBudget,
    sink: &mut S,
    stats: Arc<IoStats>,
) -> Result<WorkerReport> {
    let timer = CpuIoTimer::start(stats.clone());
    let io_before = stats.snapshot();

    let offsets = &og.offsets;
    let n = og.num_vertices();
    let chunk_cap = budget.chunk_edges();
    let mut edg: Vec<u32> = Vec::with_capacity(chunk_cap.min(range.len() as usize));
    let mut ind: Vec<(u32, u32)> = Vec::new();
    let mut nm: Vec<u32> = Vec::with_capacity(og.d_star_max as usize);
    let mut triangles = 0u64;
    let mut cpu_ops = 0u64;
    let mut iterations = 0u64;

    let mut chunk_reader = og.disk.open_adj(&stats)?;
    let mut scan_reader = og.disk.open_adj(&stats)?;

    let mut pos = range.start;
    while pos < range.end {
        let len = (range.end - pos).min(chunk_cap as u64) as usize;
        iterations += 1;

        // -- chunk load: edg + ind ------------------------------------
        edg.clear();
        chunk_reader.seek_to(pos)?;
        let got = chunk_reader.read_into(&mut edg, len)?;
        debug_assert_eq!(got, len, "range must lie within the adjacency file");
        let chunk_end = pos + len as u64;
        let vlow = vertex_of(offsets, pos);
        let vhigh = vertex_of(offsets, chunk_end - 1);
        ind.clear();
        ind.resize((vhigh - vlow + 1) as usize, (0, 0));
        for v in vlow..=vhigh {
            let seg_start = offsets[v as usize].max(pos);
            let seg_end = offsets[v as usize + 1].min(chunk_end);
            if seg_end > seg_start {
                ind[(v - vlow) as usize] = ((seg_start - pos) as u32, (seg_end - seg_start) as u32);
            }
        }
        cpu_ops += len as u64 + ind.len() as u64;

        // -- scan pass over all vertices ------------------------------
        scan_reader.seek_to(0)?;
        for u in 0..n {
            let du = (offsets[u as usize + 1] - offsets[u as usize]) as usize;
            if du == 0 {
                continue;
            }
            nm.clear();
            scan_reader.read_into(&mut nm, du)?;
            cpu_ops += du as u64;

            // N+(u): entries of nm with resident out-edges. nm is sorted
            // by id, so restrict to [vlow, vhigh] first.
            let lo_i = nm.partition_point(|&x| x < vlow);
            let hi_i = nm.partition_point(|&x| x <= vhigh);
            for idx in lo_i..hi_i {
                let v = nm[idx];
                let (seg_off, seg_len) = ind[(v - vlow) as usize];
                if seg_len == 0 {
                    continue;
                }
                let ev = &edg[seg_off as usize..(seg_off + seg_len) as usize];
                cpu_ops += (nm.len() + ev.len()) as u64;
                triangles += intersect_adaptive_visit(&nm, ev, |w| sink.emit(u, v, w));
            }
        }

        pos = chunk_end;
    }
    sink.flush()?;

    let io_after = stats.snapshot();
    Ok(WorkerReport {
        worker: 0,
        range,
        triangles,
        iterations,
        cpu_ops,
        io: pdtl_io::stats::IoSnapshot {
            bytes_read: io_after.bytes_read - io_before.bytes_read,
            bytes_written: io_after.bytes_written - io_before.bytes_written,
            read_ops: io_after.read_ops - io_before.read_ops,
            write_ops: io_after.write_ops - io_before.write_ops,
            seeks: io_after.seeks - io_before.seeks,
            io_time: io_after.io_time.saturating_sub(io_before.io_time),
        },
        breakdown: timer.finish(),
    })
}

/// Index of the vertex owning adjacency position `pos` (vertices with
/// `d* = 0` own no positions and are skipped automatically).
#[inline]
fn vertex_of(offsets: &[u64], pos: u64) -> u32 {
    debug_assert!(pos < *offsets.last().unwrap());
    (offsets.partition_point(|&o| o <= pos) - 1) as u32
}

/// Pure in-memory MGT over an [`OrientedCsr`] — identical chunk logic
/// without the disk, used by tests, baselines and the convenience
/// counter. Returns (triangles, cpu_ops).
pub fn mgt_in_memory<S: TriangleSink>(
    o: &OrientedCsr,
    budget: MemoryBudget,
    sink: &mut S,
) -> (u64, u64) {
    let n = o.num_vertices();
    let m_star = o.m_star();
    let chunk_cap = budget.chunk_edges() as u64;
    let mut triangles = 0u64;
    let mut cpu_ops = 0u64;
    let mut ind: Vec<(u32, u32)> = Vec::new();

    let mut pos = 0u64;
    while pos < m_star {
        let chunk_end = (pos + chunk_cap).min(m_star);
        let vlow = vertex_of(&o.offsets, pos);
        let vhigh = vertex_of(&o.offsets, chunk_end - 1);
        ind.clear();
        ind.resize((vhigh - vlow + 1) as usize, (0, 0));
        for v in vlow..=vhigh {
            let seg_start = o.offsets[v as usize].max(pos);
            let seg_end = o.offsets[v as usize + 1].min(chunk_end);
            if seg_end > seg_start {
                ind[(v - vlow) as usize] = ((seg_start - pos) as u32, (seg_end - seg_start) as u32);
            }
        }
        let edg = &o.adj[pos as usize..chunk_end as usize];
        cpu_ops += edg.len() as u64 + ind.len() as u64;

        for u in 0..n {
            let nm = o.out(u);
            if nm.is_empty() {
                continue;
            }
            cpu_ops += nm.len() as u64;
            let lo_i = nm.partition_point(|&x| x < vlow);
            let hi_i = nm.partition_point(|&x| x <= vhigh);
            for &v in &nm[lo_i..hi_i] {
                let (seg_off, seg_len) = ind[(v - vlow) as usize];
                if seg_len == 0 {
                    continue;
                }
                let ev = &edg[seg_off as usize..(seg_off + seg_len) as usize];
                cpu_ops += (nm.len() + ev.len()) as u64;
                triangles += intersect_adaptive_visit(nm, ev, |w| sink.emit(u, v, w));
            }
        }
        pos = chunk_end;
    }
    let _ = sink.flush();
    (triangles, cpu_ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::orient::{orient_csr, orient_to_disk};
    use crate::sink::{CollectSink, CountSink};
    use pdtl_graph::gen::classic::{complete, cycle, grid, wheel};
    use pdtl_graph::gen::rmat::rmat;
    use pdtl_graph::verify::triangle_count;
    use pdtl_graph::{DiskGraph, Graph};
    use std::path::PathBuf;

    fn tmpbase(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("pdtl-mgt-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn disk_oriented(g: &Graph, tag: &str) -> (OrientedGraph, Arc<IoStats>) {
        let stats = IoStats::new();
        let dg = DiskGraph::write(g, tmpbase(&format!("{tag}-in")), &stats).unwrap();
        let (og, _) = orient_to_disk(&dg, tmpbase(&format!("{tag}-or")), 2, &stats).unwrap();
        (og, stats)
    }

    fn full_range(og: &OrientedGraph) -> EdgeRange {
        EdgeRange {
            start: 0,
            end: og.m_star(),
        }
    }

    #[test]
    fn counts_fixture_graphs_exactly() {
        for (g, tag) in [
            (complete(10).unwrap(), "k10"),
            (cycle(12).unwrap(), "c12"),
            (wheel(9).unwrap(), "w9"),
            (grid(5, 6).unwrap(), "g56"),
        ] {
            let expected = triangle_count(&g);
            let (og, stats) = disk_oriented(&g, tag);
            let r = mgt_count_range(
                &og,
                full_range(&og),
                MemoryBudget::edges(1 << 16),
                &mut CountSink,
                stats,
            )
            .unwrap();
            assert_eq!(r.triangles, expected, "{tag}");
        }
    }

    #[test]
    fn counts_match_oracle_on_rmat_across_budgets() {
        let g = rmat(8, 11).unwrap();
        let expected = triangle_count(&g);
        let (og, stats) = disk_oriented(&g, "budgets");
        // budgets from "everything fits" down to pathologically tiny,
        // including below d*_max (small-degree assumption violated).
        for edges in [1 << 20, 4096, 256, 32, 8, 2] {
            let r = mgt_count_range(
                &og,
                full_range(&og),
                MemoryBudget::edges(edges),
                &mut CountSink,
                stats.clone(),
            )
            .unwrap();
            assert_eq!(r.triangles, expected, "budget {edges}");
            assert_eq!(
                r.iterations,
                MemoryBudget::edges(edges).iterations_for(og.m_star())
            );
        }
    }

    #[test]
    fn ranges_partition_the_count() {
        let g = rmat(8, 12).unwrap();
        let expected = triangle_count(&g);
        let (og, stats) = disk_oriented(&g, "ranges");
        let m = og.m_star();
        for parts in [2u64, 3, 7] {
            let mut total = 0u64;
            for i in 0..parts {
                let range = EdgeRange {
                    start: m * i / parts,
                    end: m * (i + 1) / parts,
                };
                let r = mgt_count_range(
                    &og,
                    range,
                    MemoryBudget::edges(512),
                    &mut CountSink,
                    stats.clone(),
                )
                .unwrap();
                total += r.triangles;
            }
            assert_eq!(total, expected, "parts {parts}");
        }
    }

    #[test]
    fn listing_matches_oracle_set() {
        let g = rmat(7, 13).unwrap();
        let (og, stats) = disk_oriented(&g, "listing");
        let mut sink = CollectSink::default();
        let r = mgt_count_range(
            &og,
            full_range(&og),
            MemoryBudget::edges(128),
            &mut sink,
            stats,
        )
        .unwrap();
        assert_eq!(r.triangles as usize, sink.triangles.len());

        // canonicalise (u,v,w) -> sorted ids and compare with oracle
        let mut got: Vec<(u32, u32, u32)> = sink
            .triangles
            .iter()
            .map(|&(a, b, c)| {
                let mut t = [a, b, c];
                t.sort_unstable();
                (t[0], t[1], t[2])
            })
            .collect();
        got.sort_unstable();
        let mut expected = pdtl_graph::verify::triangle_list(&g);
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn each_triangle_emitted_once_with_cone_first() {
        let g = rmat(6, 14).unwrap();
        let (og, stats) = disk_oriented(&g, "cone");
        let mut sink = CollectSink::default();
        mgt_count_range(
            &og,
            full_range(&og),
            MemoryBudget::edges(64),
            &mut sink,
            stats,
        )
        .unwrap();
        let degrees = g.degrees();
        let ord = crate::order::DegreeOrder::new(&degrees);
        let mut seen = std::collections::HashSet::new();
        for &(u, v, w) in &sink.triangles {
            assert!(ord.precedes(u, v) && ord.precedes(v, w), "u ≺ v ≺ w");
            let mut t = [u, v, w];
            t.sort_unstable();
            assert!(seen.insert(t), "duplicate triangle {t:?}");
        }
    }

    #[test]
    fn empty_range_and_empty_graph() {
        let g = rmat(6, 15).unwrap();
        let (og, stats) = disk_oriented(&g, "empty-range");
        let r = mgt_count_range(
            &og,
            EdgeRange { start: 5, end: 5 },
            MemoryBudget::edges(64),
            &mut CountSink,
            stats,
        )
        .unwrap();
        assert_eq!(r.triangles, 0);
        assert_eq!(r.iterations, 0);

        let g = Graph::empty(4);
        let (og, stats) = disk_oriented(&g, "empty-graph");
        let r = mgt_count_range(
            &og,
            full_range(&og),
            MemoryBudget::edges(64),
            &mut CountSink,
            stats,
        )
        .unwrap();
        assert_eq!(r.triangles, 0);
    }

    #[test]
    fn io_grows_with_iterations() {
        // Theorem IV.2: h = ceil(m*/cM) passes over the graph.
        let g = rmat(8, 16).unwrap();
        let (og, stats) = disk_oriented(&g, "iogrow");
        let run = |edges: usize| {
            let s = IoStats::new();
            let og2 = OrientedGraph {
                disk: og.disk.clone(),
                offsets: og.offsets.clone(),
                d_star_max: og.d_star_max,
                orig_degrees: None,
            };
            let r = mgt_count_range(
                &og2,
                EdgeRange {
                    start: 0,
                    end: og.m_star(),
                },
                MemoryBudget::edges(edges),
                &mut CountSink,
                s,
            )
            .unwrap();
            (r.iterations, r.io.bytes_read)
        };
        let _ = &stats;
        let (it_big, io_big) = run(1 << 20);
        let (it_small, io_small) = run(256);
        assert_eq!(it_big, 1);
        assert!(it_small > it_big);
        assert!(
            io_small > 2 * io_big,
            "more iterations must re-scan the graph: {io_small} vs {io_big}"
        );
    }

    #[test]
    fn in_memory_matches_disk_engine() {
        let g = rmat(8, 17).unwrap();
        let o = orient_csr(&g);
        for edges in [1 << 20, 512, 16] {
            let (t, ops) = mgt_in_memory(&o, MemoryBudget::edges(edges), &mut CountSink);
            assert_eq!(t, triangle_count(&g), "budget {edges}");
            assert!(ops > 0);
        }
    }

    #[test]
    fn cpu_ops_respect_arboricity_flavor() {
        // On the (planar) grid the intersection work must stay linear-ish
        // in |E|: cpu_ops = O(|E|) with a small constant when M is large.
        let g = grid(40, 40).unwrap();
        let o = orient_csr(&g);
        let (_, ops) = mgt_in_memory(&o, MemoryBudget::edges(1 << 22), &mut CountSink);
        let m = g.num_edges();
        assert!(
            ops < 20 * m,
            "planar graph: ops {ops} should be O(|E|) = O({m})"
        );
    }

    #[test]
    fn vertex_of_skips_zero_degree_vertices() {
        // offsets: v0 has 2, v1 has 0, v2 has 3
        let offsets = [0u64, 2, 2, 5];
        assert_eq!(vertex_of(&offsets, 0), 0);
        assert_eq!(vertex_of(&offsets, 1), 0);
        assert_eq!(vertex_of(&offsets, 2), 2);
        assert_eq!(vertex_of(&offsets, 4), 2);
    }
}
